// Figure 7: loss in fault RECOVERY coverage across the ITR cache design
// space (every miss costs recovery coverage).
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("fig07_recovery_loss", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 8'000'000);
    const auto names = bench::select_benchmarks(flags, workload::coverage_figure_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    bench::select_stream_cache(flags);
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Figure 7: loss in fault recovery coverage",
                "Paper: for 2-way/1024 signatures the average loss is 2.5% with a\n"
                "maximum of 15% (vortex); recovery loss always exceeds detection loss.",
                bench::coverage_sweep_table(names, insns, /*detection=*/false, threads));
    return 0;
  });
}
