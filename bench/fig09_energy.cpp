// Figure 9: energy of the ITR cache vs redundant I-cache fetch, from
// cycle-level access counts and the calibrated mini-CACTI model.
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("fig09_energy", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 4'000'000);
    const auto names = bench::select_benchmarks(flags, workload::spec_all_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Figure 9: energy of ITR cache vs I-cache redundant fetch",
                "Paper: 0.87 nJ/access I-cache vs 0.58/0.84 nJ ITR cache; the ITR\n"
                "approach is far more energy-efficient than fetching twice.",
                bench::energy_table(names, insns, threads));
    return 0;
  });
}
