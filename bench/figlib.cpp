#include "figlib.hpp"

#include <array>
#include <map>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include "fi/service.hpp"
#include "itr/sweep_engine.hpp"
#include "power/cacti.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "trace/trace_builder.hpp"
#include "workload/generator.hpp"
#include "workload/spec_profiles.hpp"
#include "workload/stream_cache.hpp"

namespace itr::bench {

namespace {

/// Runs `fill_rows(name, sub_table)` for every benchmark across `threads`
/// lanes and merges the sub-tables in input order: each lane touches only its
/// own slot, so the merged table is byte-identical at any thread count.
template <typename FillRows>
util::Table by_benchmark(const std::vector<std::string>& headers,
                         const std::vector<std::string>& names, unsigned threads,
                         FillRows&& fill_rows) {
  std::vector<util::Table> parts(names.size(), util::Table(headers));
  util::parallel_for(threads, names.size(),
                     [&](std::size_t i) { fill_rows(names[i], parts[i]); });
  util::Table merged(headers);
  for (const util::Table& part : parts) merged.append_rows(part);
  return merged;
}

/// Lanes left for nested fan-out once the outer level spreads `items` work
/// units over `threads`: with at least one item per lane the inner level runs
/// serial (1); with fewer items than lanes the spare lanes go to each item.
unsigned inner_threads(unsigned threads, std::size_t items) {
  if (items == 0) return 1;
  const auto per_item = static_cast<unsigned>(threads / items);
  return per_item > 1 ? per_item : 1u;
}

}  // namespace

trace::RepetitionAnalyzer analyze_benchmark(const std::string& name,
                                            std::uint64_t insns) {
  const auto prog = workload::generate_spec(name, insns * 2);
  trace::RepetitionAnalyzer an;
  trace::TraceBuilder tb([&an](const trace::TraceRecord& r) { an.on_trace(r); });
  sim::FunctionalSim fsim(prog);
  fsim.run(insns, [&tb](const sim::FunctionalSim::Step& s) {
    tb.on_instruction(s.pc, s.sig, s.index);
  });
  tb.flush();
  return an;
}

util::Table repetition_table(const std::vector<std::string>& names,
                             std::uint64_t insns, unsigned threads) {
  const std::vector<std::size_t> points = {10, 25, 50, 100, 200, 300, 500, 1000};
  std::vector<std::string> headers = {"benchmark", "statics"};
  for (auto p : points) headers.push_back("top" + std::to_string(p));
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto an = analyze_benchmark(name, insns);
    const auto curve = an.cumulative_share_by_hotness();
    table.begin_row().add(name).add(an.num_static_traces());
    for (auto p : points) {
      const double share = curve.empty() ? 0.0
                           : p <= curve.size() ? curve[p - 1]
                                               : curve.back();
      table.add(100.0 * share, 1);
    }
  });
}

util::Table proximity_table(const std::vector<std::string>& names,
                            std::uint64_t insns, unsigned threads) {
  const std::vector<std::uint64_t> edges = {500,  1000, 1500, 2000,
                                            3000, 5000, 10000};
  std::vector<std::string> headers = {"benchmark"};
  for (auto e : edges) {
    // Built with append rather than operator+ to dodge a GCC 12 -Wrestrict
    // false positive (PR 105651) under -Werror.
    std::string h = "<";
    h += std::to_string(e);
    headers.push_back(std::move(h));
  }
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto an = analyze_benchmark(name, insns);
    table.begin_row().add(name);
    for (auto e : edges) table.add(100.0 * an.share_repeating_within(e), 1);
  });
}

std::uint64_t paper_static_traces(const std::string& name) {
  static const std::map<std::string, std::uint64_t> kPaper = {
      {"bzip", 283},   {"gap", 696},    {"gcc", 24017}, {"gzip", 291},
      {"parser", 865}, {"perl", 1704},  {"twolf", 481}, {"vortex", 2655},
      {"vpr", 292},    {"applu", 282},  {"apsi", 1274}, {"art", 98},
      {"equake", 336}, {"mgrid", 798},  {"swim", 73},   {"wupwise", 18}};
  const auto it = kPaper.find(name);
  return it == kPaper.end() ? 0 : it->second;
}

util::Table static_trace_table(const std::vector<std::string>& names,
                               std::uint64_t insns, unsigned threads) {
  const std::vector<std::string> headers = {"benchmark", "paper", "measured",
                                            "delta%"};
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto an = analyze_benchmark(name, insns);
    const auto paper = paper_static_traces(name);
    const auto measured = an.num_static_traces();
    const double delta =
        paper == 0 ? 0.0
                   : 100.0 * (static_cast<double>(measured) - static_cast<double>(paper)) /
                         static_cast<double>(paper);
    table.begin_row().add(name).add(paper).add(measured).add(delta, 2);
  });
}

namespace {

struct SweepPoint {
  const char* label;
  std::size_t assoc;  // 0 = fully associative
};

constexpr SweepPoint kAssocSweep[] = {{"dm", 1},    {"2-way", 2},  {"4-way", 4},
                                      {"8-way", 8}, {"16-way", 16}, {"fa", 0}};
constexpr std::size_t kSizeSweep[] = {256, 512, 1024};

}  // namespace

util::Table coverage_sweep_table(const std::vector<std::string>& names,
                                 std::uint64_t insns, bool detection,
                                 unsigned threads) {
  std::vector<std::string> headers = {"benchmark", "assoc"};
  for (auto size : kSizeSweep) headers.push_back(std::to_string(size) + "sig%");
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto stream = workload::cached_trace_stream(name, insns);
    // All 18 sweep points advance in one pass over the stream; the engine
    // reproduces exactly the counters 18 replay_coverage passes would.
    std::vector<core::ItrCacheConfig> configs;
    configs.reserve(std::size(kAssocSweep) * std::size(kSizeSweep));
    for (const auto& point : kAssocSweep) {
      for (auto size : kSizeSweep) {
        core::ItrCacheConfig cfg;
        cfg.num_signatures = size;
        cfg.associativity = point.assoc;
        configs.push_back(cfg);
      }
    }
    const auto results = core::SweepEngine::run(stream, configs);
    core::publish_sweep_stats(results, obs::MetricClass::kArchitectural);
    std::size_t next = 0;
    for (const auto& point : kAssocSweep) {
      table.begin_row().add(name).add(point.label);
      for (std::size_t s = 0; s < std::size(kSizeSweep); ++s) {
        const auto& counters = results[next++].counters;
        table.add(detection ? counters.detection_loss_percent()
                            : counters.recovery_loss_percent(),
                  2);
      }
    }
  });
}

util::Table fault_injection_table(const std::vector<std::string>& names,
                                  std::uint64_t insns, std::uint64_t faults,
                                  std::uint64_t window_cycles, std::uint64_t seed,
                                  unsigned threads, fi::CheckpointMode mode,
                                  std::uint64_t ladder_interval,
                                  fi::PruneConfig prune, fi::ExecMode exec,
                                  std::uint64_t batch_width) {
  // The campaign parameters and the table rendering are shared with the
  // sharded campaign service (fi/service): make_campaign_config derives the
  // per-benchmark config and fault_injection_table_from_tallies builds the
  // rows, so `itr_sim --campaign-merge` output is byte-identical to this
  // single-process builder by construction.
  fi::service::CampaignSpec spec;
  spec.benchmarks = names;
  spec.insns = insns;
  spec.faults = faults;
  spec.window = window_cycles;
  spec.seed = seed;
  spec.mode = mode;
  spec.ladder_interval = ladder_interval;
  spec.prune = prune;
  spec.exec = exec;
  spec.batch_width = batch_width;

  // One campaign per benchmark; campaigns run concurrently, and when there
  // are spare lanes (few benchmarks, many threads) each campaign fans its
  // injections over them too.  Tallies land in per-benchmark slots, so row
  // order and the Avg row are thread-count independent.
  const unsigned inner = inner_threads(threads, names.size());
  std::vector<fi::service::OutcomeTally> tallies(names.size());
  util::parallel_for(threads, names.size(), [&](std::size_t b) {
    const auto prog = workload::generate_spec(names[b], insns);
    fi::FaultInjectionCampaign camp(prog, fi::service::make_campaign_config(spec));
    tallies[b] = fi::service::OutcomeTally::from_summary(camp.run(faults, inner));
  });
  return fi::service::fault_injection_table_from_tallies(names, tallies);
}

util::Table energy_table(const std::vector<std::string>& names, std::uint64_t insns,
                         unsigned threads) {
  const std::vector<std::string> headers = {"benchmark", "insns",
                                            "icache-2x-fetch mJ", "itr 1rd/wr mJ",
                                            "itr 1rd+1wr mJ", "itr/icache"};
  const auto icache = power::power4_icache_geometry();
  const auto itr1 = power::itr_cache_geometry(1);
  const auto itr2 = power::itr_cache_geometry(2);
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto prog = workload::generate_spec(name, insns * 2);
    sim::CycleSim::Options opt;
    opt.itr = core::ItrCacheConfig{};  // paper config: 1024 signatures, 2-way
    sim::CycleSim cs(prog, std::move(opt));
    cs.run(insns);
    const auto& counters = cs.itr_unit()->cache().counters();
    const std::uint64_t itr_accesses = counters.cache_reads + counters.cache_writes;
    // Redundant fetch energy: one extra I-cache access per fetch bundle.
    const double icache_mj = power::total_energy_mj(icache, cs.stats().fetch_bundles);
    const double itr1_mj = power::total_energy_mj(itr1, itr_accesses);
    const double itr2_mj = power::total_energy_mj(itr2, itr_accesses);
    table.begin_row()
        .add(name)
        .add(cs.stats().instructions_committed)
        .add(icache_mj, 2)
        .add(itr1_mj, 2)
        .add(itr2_mj, 2)
        .add(icache_mj == 0.0 ? 0.0 : itr1_mj / icache_mj, 3);
  });
}

util::Table checkpoint_table(const std::vector<std::string>& names,
                             std::uint64_t insns, unsigned threads) {
  // Threshold sweep: the paper proposes checkpointing at zero unchecked
  // lines; in steady state cold once-executed traces keep that count above
  // zero, so we also report small nonzero thresholds (each tolerated
  // unchecked line is a bounded residual vulnerability).
  const std::vector<std::string> headers = {
      "benchmark",      "threshold",          "checkpoints",   "mean-interval",
      "recovery-loss%", "recovered-by-ckpt%", "residual-loss%"};
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto stream = workload::cached_trace_stream(name, insns);
    for (const std::uint64_t threshold : {std::uint64_t{0}, std::uint64_t{8},
                                          std::uint64_t{32}, std::uint64_t{128}}) {
      core::ItrCacheConfig cfg;  // paper config
      const auto st = core::replay_with_checkpoints(stream, cfg, threshold);
      const double total = static_cast<double>(st.coverage.total_instructions);
      const double rec_loss = st.coverage.recovery_loss_percent();
      const double recovered =
          total == 0.0
              ? 0.0
              : 100.0 * static_cast<double>(st.recoverable_by_checkpoint_instructions) /
                    total;
      table.begin_row()
          .add(name)
          .add(threshold)
          .add(st.checkpoints_taken)
          .add(st.mean_checkpoint_interval, 0)
          .add(rec_loss, 2)
          .add(recovered, 2)
          .add(rec_loss - recovered, 2);
    }
  });
}

util::Table checked_lru_table(const std::vector<std::string>& names,
                              std::uint64_t insns, unsigned threads) {
  const std::vector<std::string> headers = {"benchmark",          "size",
                                            "lru-det%",           "checked-first-det%",
                                            "lru-rec%",           "checked-first-rec%"};
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto stream = workload::cached_trace_stream(name, insns);
    // One engine pass over all four points; the checked-first configs take
    // the engine's concrete-model path (stack inclusion holds only for LRU).
    std::vector<core::ItrCacheConfig> configs;
    for (std::size_t size : {std::size_t{256}, std::size_t{1024}}) {
      core::ItrCacheConfig lru;
      lru.num_signatures = size;
      lru.associativity = 2;
      core::ItrCacheConfig checked = lru;
      checked.replacement = cache::Replacement::kPreferFlaggedLru;
      configs.push_back(lru);
      configs.push_back(checked);
    }
    const auto results = core::SweepEngine::run(stream, configs);
    core::publish_sweep_stats(results, obs::MetricClass::kArchitectural);
    for (std::size_t i = 0; i < results.size(); i += 2) {
      const auto& a = results[i].counters;
      const auto& b = results[i + 1].counters;
      table.begin_row()
          .add(name)
          .add(static_cast<std::uint64_t>(results[i].config.num_signatures))
          .add(a.detection_loss_percent(), 2)
          .add(b.detection_loss_percent(), 2)
          .add(a.recovery_loss_percent(), 2)
          .add(b.recovery_loss_percent(), 2);
    }
  });
}

util::Table selective_redundancy_table(const std::vector<std::string>& names,
                                       std::uint64_t insns, unsigned threads) {
  // Section 3 future work: on an ITR-cache miss, re-fetch and re-decode the
  // trace (conventional time redundancy as a fallback), closing the recovery
  // coverage hole at the cost of extra frontend energy.
  const std::vector<std::string> headers = {"benchmark",    "miss-insns%",
                                            "itr mJ",       "selective mJ",
                                            "full-TR mJ",   "selective-savings-x"};
  const auto icache = power::power4_icache_geometry();
  const auto itr1 = power::itr_cache_geometry(1);
  const double insns_per_fetch = 3.0;  // measured average bundle size
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto stream = workload::cached_trace_stream(name, insns);
    core::ItrCacheConfig cfg;  // paper config
    const auto counters = core::replay_coverage(stream, cfg);
    const double total = static_cast<double>(counters.total_instructions);
    const double miss_insns = static_cast<double>(counters.recovery_loss_instructions);
    const double itr_mj =
        power::total_energy_mj(itr1, counters.cache_reads + counters.cache_writes);
    const double refetch_mj = power::total_energy_mj(
        icache, static_cast<std::uint64_t>(miss_insns / insns_per_fetch));
    const double full_tr_mj = power::total_energy_mj(
        icache, static_cast<std::uint64_t>(total / insns_per_fetch));
    const double selective_mj = itr_mj + refetch_mj;
    table.begin_row()
        .add(name)
        .add(total == 0.0 ? 0.0 : 100.0 * miss_insns / total, 2)
        .add(itr_mj, 2)
        .add(selective_mj, 2)
        .add(full_tr_mj, 2)
        .add(selective_mj == 0.0 ? 0.0 : full_tr_mj / selective_mj, 1);
  });
}

util::Table trace_length_table(const std::vector<std::string>& names,
                               std::uint64_t insns, unsigned threads) {
  const std::vector<std::string> headers = {
      "benchmark",       "max-len",        "dyn-traces",        "avg-len",
      "detection-loss%", "recovery-loss%", "itr-reads/1k-insns"};
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    for (const unsigned max_len : {4u, 8u, 16u, 32u}) {
      const auto stream = workload::cached_trace_stream(name, insns, max_len);
      core::ItrCacheConfig cfg;  // paper configuration
      const auto counters = core::replay_coverage(stream, cfg);
      const double traces = static_cast<double>(counters.total_traces);
      const double total = static_cast<double>(counters.total_instructions);
      table.begin_row()
          .add(name)
          .add(static_cast<std::uint64_t>(max_len))
          .add(counters.total_traces)
          .add(traces == 0.0 ? 0.0 : total / traces, 2)
          .add(counters.detection_loss_percent(), 2)
          .add(counters.recovery_loss_percent(), 2)
          .add(total == 0.0 ? 0.0 : 1000.0 * static_cast<double>(counters.cache_reads) / total,
               1);
    }
  });
}

util::Table rename_check_table(const std::vector<std::string>& names,
                               std::uint64_t insns, std::uint64_t faults,
                               std::uint64_t seed, unsigned threads) {
  const std::vector<std::string> headers = {"benchmark", "faults", "sdc%",
                                            "rename-check-detect%",
                                            "decode-itr-detect%"};
  const unsigned inner = inner_threads(threads, names.size());
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto prog = workload::generate_spec(name, insns);
    // Pre-draw the fault plan from the sequential per-benchmark RNG stream
    // (same draws as the serial loop always made), then classify the faults
    // across the spare lanes; per-fault verdicts land in indexed slots.
    struct RenameDraw {
      std::uint64_t target = 0;
      std::uint8_t port = 0;
      std::uint8_t bit = 0;
    };
    util::Xoshiro256StarStar rng(seed);
    std::vector<RenameDraw> plan(static_cast<std::size_t>(faults));
    for (RenameDraw& d : plan) {
      d.target = 20'000 + rng.below(insns / 4);
      d.port = static_cast<std::uint8_t>(rng.below(3));
      d.bit = static_cast<std::uint8_t>(rng.below(5));
    }
    struct Verdict {
      bool sdc = false;
      bool rename = false;
      bool decode = false;
    };
    std::vector<Verdict> verdicts(plan.size());
    util::parallel_for(inner, plan.size(), [&](std::size_t f) {
      sim::CycleSim::Options opt;
      opt.itr = core::ItrCacheConfig{};
      opt.rename_check = true;
      opt.rename_fault.enabled = true;
      opt.rename_fault.target_decode_index = plan[f].target;
      opt.rename_fault.port = plan[f].port;
      opt.rename_fault.bit = plan[f].bit;
      opt.max_cycles = 60'000;
      sim::CycleSim faulty(prog, std::move(opt));
      sim::FunctionalSim golden(prog);
      Verdict v;
      std::uint64_t budget = 200'000;
      while (budget > 0) {
        const bool alive = faulty.advance();
        while (auto ev = faulty.next_itr_event()) {
          v.rename |= ev->kind == sim::ItrEvent::Kind::kRenameMismatch;
          v.decode |= ev->kind == sim::ItrEvent::Kind::kMismatchDetected;
        }
        while (auto crec = faulty.next_commit()) {
          --budget;
          if (!v.sdc && !golden.done()) {
            const auto g = golden.step();
            if (crec->pc != g.pc || crec->int_value != g.fx.int_value ||
                crec->store_value != g.fx.store_value) {
              v.sdc = true;
            }
          }
        }
        if (!alive) break;
        if (v.rename && v.sdc) break;
      }
      verdicts[f] = v;
    });
    std::uint64_t sdc = 0, rename_det = 0, decode_det = 0;
    for (const Verdict& v : verdicts) {
      sdc += v.sdc ? 1 : 0;
      rename_det += v.rename ? 1 : 0;
      decode_det += v.decode ? 1 : 0;
    }
    const double n = static_cast<double>(faults);
    table.begin_row()
        .add(name)
        .add(faults)
        .add(100.0 * static_cast<double>(sdc) / n, 1)
        .add(100.0 * static_cast<double>(rename_det) / n, 1)
        .add(100.0 * static_cast<double>(decode_det) / n, 1);
  });
}

util::Table perf_overhead_table(const std::vector<std::string>& names,
                                std::uint64_t insns, unsigned threads) {
  const std::vector<std::string> headers = {
      "benchmark", "ipc-no-itr",     "ipc-lat2",          "ipc-lat8",
      "ipc-lat16", "overhead-lat8%", "stall-cycles-lat8"};
  return by_benchmark(headers, names, threads,
                      [&](const std::string& name, util::Table& table) {
    const auto prog = workload::generate_spec(name, insns * 2);
    auto run_ipc = [&](bool itr_on, unsigned probe_latency,
                       std::uint64_t* stalls) {
      sim::CycleSim::Options opt;
      if (itr_on) opt.itr = core::ItrCacheConfig{};
      opt.config.itr_probe_latency = probe_latency;
      sim::CycleSim cs(prog, std::move(opt));
      cs.run(insns);
      if (stalls != nullptr) *stalls = cs.stats().itr_commit_stall_cycles;
      return cs.stats().ipc();
    };
    const double base = run_ipc(false, 0, nullptr);
    const double lat2 = run_ipc(true, 2, nullptr);
    std::uint64_t stalls8 = 0;
    const double lat8 = run_ipc(true, 8, &stalls8);
    const double lat16 = run_ipc(true, 16, nullptr);
    table.begin_row()
        .add(name)
        .add(base, 3)
        .add(lat2, 3)
        .add(lat8, 3)
        .add(lat16, 3)
        .add(base == 0.0 ? 0.0 : 100.0 * (base - lat8) / base, 2)
        .add(stalls8);
  });
}

}  // namespace itr::bench
