// Trace-length design-space ablation: the paper terminates traces at 16
// instructions; shorter traces mean more ITR cache accesses (energy) and
// more static traces (capacity pressure), longer traces amortize both.
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("ablation_trace_length", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 4'000'000);
    const auto names = bench::select_benchmarks(flags, workload::coverage_figure_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    bench::select_stream_cache(flags);
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Ablation: maximum trace length (paper fixes 16)",
                "Shorter traces raise ITR-cache access rates and static-trace counts;\n"
                "longer ones amortize lookups but put more instructions at risk per\n"
                "unchecked signature.",
                bench::trace_length_table(names, insns, threads));
    return 0;
  });
}
