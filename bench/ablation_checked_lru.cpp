// Replacement ablation the paper mentions but does not study (Section 2.3):
// prefer evicting lines whose signature has already been checked.
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("ablation_checked_lru", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 6'000'000);
    const auto names = bench::select_benchmarks(flags, workload::coverage_figure_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    bench::select_stream_cache(flags);
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Ablation: checked-first LRU replacement (paper Section 2.3)",
                "Evicting checked lines first protects unreferenced signatures and\n"
                "should reduce detection-coverage loss at equal capacity.",
                bench::checked_lru_table(names, insns, threads));
    return 0;
  });
}
