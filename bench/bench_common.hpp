// Shared plumbing for the per-figure/per-table bench binaries.
//
// Every binary prints the rows/series of one paper exhibit as an aligned
// ASCII table (or CSV with --csv) plus a short header stating what the paper
// reported, so EXPERIMENTS.md comparisons can be regenerated mechanically.
//
// Common flags:
//   --insns N        dynamic instructions simulated per benchmark
//                    (paper: 200M after a 900M skip; default is smaller)
//   --csv            emit CSV instead of the aligned table
//   --benchmarks a,b restrict to a comma-separated subset
//   --threads N      worker threads for row/injection fan-out
//                    (0 or absent: hardware concurrency); any value produces
//                    byte-identical output
//   --stats-json F   write the observability stats registry as JSON
//   --stats-full     include diagnostic-class (host-execution) metrics
//   --trace-out F    write recorded spans as Chrome trace_event JSON
//
// The observability flags are wired by declaring `util::ObsGuard
// obs_guard(flags);` before reject_unknown(); see util/obs_flags.hpp.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/stream_cache.hpp"

namespace itr::bench {

/// Wraps a bench main body: util::CliError (bad flag value, unknown flag)
/// and any other std::exception print to stderr and exit with status 2,
/// instead of escaping main and calling std::terminate with no message.
template <typename Fn>
int guarded(const char* binary, Fn&& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    std::cerr << binary << ": " << e.what() << "\n";
    return 2;
  }
}

/// Applies the --stream-cache flag for binaries whose builders replay
/// CompactTrace streams: a directory overrides the cache location, "off"
/// disables it (every run regenerates the stream).  Absent, the default
/// resolution applies ($ITR_STREAM_CACHE_DIR, else ./.itr-stream-cache).
/// Cached and regenerated streams are identical by construction, so the
/// flag never changes output bytes, only wall-clock time.
inline void select_stream_cache(const util::CliFlags& flags) {
  const std::string dir = flags.get_string("stream-cache", "");
  if (dir == "off" || dir == "none") {
    workload::set_stream_cache_dir("");
  } else if (!dir.empty()) {
    workload::set_stream_cache_dir(dir);
  }
}

/// Parses the comma-separated --benchmarks flag against `all`; returns `all`
/// when the flag is absent.
inline std::vector<std::string> select_benchmarks(const util::CliFlags& flags,
                                                  const std::vector<std::string>& all) {
  const std::string list = flags.get_string("benchmarks", "");
  if (list.empty()) return all;
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Resolves the --threads flag: 0 or absent means hardware concurrency.
/// The result only affects wall-clock time, never output bytes.
inline unsigned select_threads(const util::CliFlags& flags) {
  return util::resolve_threads(flags.get_u64("threads", 0));
}

/// Prints the exhibit header and the table in the requested format.
inline void emit(const util::CliFlags& flags, const std::string& title,
                 const std::string& paper_note, const util::Table& table) {
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
    return;
  }
  std::cout << "== " << title << " ==\n";
  if (!paper_note.empty()) std::cout << paper_note << "\n";
  std::cout << "\n";
  table.print(std::cout);
}

}  // namespace itr::bench
