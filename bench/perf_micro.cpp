// Google-benchmark microbenchmarks for the hot paths of the library:
// decode + signature generation (raw vs predecoded), ITR cache
// probe/install, functional and cycle-level simulation throughput, memory
// and checkpoint cloning (deep copy vs copy-on-write), and fault-injection
// campaign throughput (scratch vs single checkpoint vs checkpoint ladder).
//
// Unless --benchmark_out is given, results are also written to
// BENCH_perf.json (google-benchmark JSON) for machine consumption;
// tools/bench_diff.py compares two such files.
// --threads N selects the parallel lane count for the campaign-throughput
// benchmarks (each runs at 1 thread and at N; default N=8, 0 = hardware
// concurrency).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include <cstdio>
#include <filesystem>

#include "fi/classify.hpp"
#include "fi/prune.hpp"
#include "isa/decode.hpp"
#include "isa/predecode.hpp"
#include "itr/coverage.hpp"
#include "itr/itr_cache.hpp"
#include "itr/sweep_engine.hpp"
#include "obs/registry.hpp"
#include "sim/functional.hpp"
#include "sim/golden_stream.hpp"
#include "sim/memory.hpp"
#include "sim/pipeline.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"
#include "workload/stream_cache.hpp"

namespace {

using namespace itr;

void BM_DecodeSignals(benchmark::State& state) {
  util::Xoshiro256StarStar rng(1);
  std::vector<std::uint64_t> raws;
  for (int i = 0; i < 1024; ++i) {
    raws.push_back(isa::encode(isa::make_rr(isa::Opcode::kAdd,
                                            static_cast<int>(rng.below(32)),
                                            static_cast<int>(rng.below(32)),
                                            static_cast<int>(rng.below(32)))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode_raw(raws[i++ & 1023]).pack());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeSignals);

/// The fast-path counterpart of BM_DecodeSignals: one table lookup per
/// dynamic instruction instead of a full decode.
void BM_PredecodeLookup(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  const isa::PredecodedProgram table(prog);
  const std::uint64_t end =
      prog.code_base + table.num_instructions() * isa::kInstrBytes;
  std::uint64_t pc = prog.code_base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.signals_at(pc).pack());
    pc += isa::kInstrBytes;
    if (pc >= end) pc = prog.code_base;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredecodeLookup);

/// One-time cost of building the predecode table (amortized over every
/// dynamic instruction of every simulator sharing it).
void BM_PredecodeBuild(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  for (auto _ : state) {
    isa::PredecodedProgram table(prog);
    benchmark::DoNotOptimize(table.num_instructions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(prog.code.size()));
  state.SetLabel(std::to_string(prog.code.size()) + " static instructions");
}
BENCHMARK(BM_PredecodeBuild);

void BM_SignatureFold(benchmark::State& state) {
  const auto sig = isa::decode(isa::make_rr(isa::Opcode::kAdd, 1, 2, 3));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= sig.pack();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureFold);

void BM_ItrCacheProbe(benchmark::State& state) {
  core::ItrCacheConfig cfg;
  cfg.num_signatures = static_cast<std::size_t>(state.range(0));
  core::ItrCache cache(cfg);
  // Warm with a working set half the cache size.
  const std::uint64_t ws = cfg.num_signatures / 2;
  trace::TraceRecord rec;
  rec.num_instructions = 6;
  for (std::uint64_t i = 0; i < ws; ++i) {
    rec.start_pc = 0x10000 + i * 48;
    rec.signature = i;
    cache.probe(rec);
    cache.install(rec);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    rec.start_pc = 0x10000 + (i++ % ws) * 48;
    rec.signature = i % ws;
    benchmark::DoNotOptimize(cache.probe(rec).outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ItrCacheProbe)->Arg(256)->Arg(1024);

void BM_FunctionalSim(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  sim::FunctionalSim fsim(prog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.step().fx.next_pc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("instructions (predecoded)");
}
BENCHMARK(BM_FunctionalSim);

/// The seed decode path (decode_raw per dynamic instruction); the gap to
/// BM_FunctionalSim is the predecode saving on the functional hot loop.
void BM_FunctionalSimRawDecode(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  sim::FunctionalSim fsim(prog, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.step().fx.next_pc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("instructions (raw decode)");
}
BENCHMARK(BM_FunctionalSimRawDecode);

void BM_CycleSim(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  sim::CycleSim::Options opt;
  opt.itr = core::ItrCacheConfig{};
  sim::CycleSim cs(prog, std::move(opt));
  for (auto _ : state) {
    cs.advance();
    while (cs.next_commit().has_value()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("instructions (with ITR)");
}
BENCHMARK(BM_CycleSim);

/// Cloning a memory image: arg0 selects the policy (0 = eager deep copy,
/// 1 = copy-on-write), arg1 is the number of touched pages.
void BM_MemoryClone(benchmark::State& state) {
  const bool cow = state.range(0) != 0;
  const auto pages = static_cast<std::uint64_t>(state.range(1));
  sim::Memory mem;
  mem.set_cow(cow);
  for (std::uint64_t p = 0; p < pages; ++p) {
    mem.write64(p * sim::Memory::kPageBytes, p + 1);
  }
  for (auto _ : state) {
    sim::Memory clone(mem);
    benchmark::DoNotOptimize(clone.read64(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(cow ? "cow" : "deep") + ", " +
                 std::to_string(pages) + " pages");
}
BENCHMARK(BM_MemoryClone)->Args({0, 1024})->Args({1, 1024});

/// A/B for the zero-overhead-when-off requirement on the stats registry
/// itself: the guarded counter update with stats disabled (arg 0; one
/// relaxed load + branch) vs enabled (arg 1; thread-local shard update).
void BM_ObsCount(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  obs::set_stats_enabled(on);
  for (auto _ : state) {
    obs::count("perf_micro.bm_obs_count");
    benchmark::ClobberMemory();
  }
  obs::set_stats_enabled(false);
  obs::registry().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(on ? "stats enabled" : "stats disabled");
}
BENCHMARK(BM_ObsCount)->Arg(0)->Arg(1);

void BM_ObsHistogram(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  obs::set_stats_enabled(on);
  const obs::HistogramSpec spec{/*bin_width=*/64, /*num_bins=*/32};
  std::uint64_t v = 0;
  for (auto _ : state) {
    obs::observe("perf_micro.bm_obs_histogram", v++ & 2047u, spec);
    benchmark::ClobberMemory();
  }
  obs::set_stats_enabled(false);
  obs::registry().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(on ? "stats enabled" : "stats disabled");
}
BENCHMARK(BM_ObsHistogram)->Arg(0)->Arg(1);

/// A/B over the instrumented thread pool (submit-side queue-depth gauge and
/// worker-side task timing): fan-out throughput with stats disabled vs
/// enabled.  The disabled column is the compiled-in-but-off overhead the
/// acceptance criterion bounds.
void BM_ObsParallelFor(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  obs::set_stats_enabled(on);
  util::ThreadPool pool(4);
  for (auto _ : state) {
    std::atomic<std::uint64_t> acc{0};
    util::parallel_for(pool, 256,
                       [&acc](std::size_t i) {
                         acc.fetch_add(i, std::memory_order_relaxed);
                       });
    benchmark::DoNotOptimize(acc.load());
  }
  obs::set_stats_enabled(false);
  obs::registry().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
  state.SetLabel(on ? "stats enabled" : "stats disabled");
}
BENCHMARK(BM_ObsParallelFor)->Arg(0)->Arg(1)->UseRealTime();

/// The fig06/fig07 workload at paper-smoke scale, shared (and built once)
/// across the coverage-sweep and stream-cache benchmarks.
const std::vector<core::CompactTrace>& sweep_stream() {
  static const std::vector<core::CompactTrace> stream =
      workload::collect_trace_stream(workload::generate_spec("vortex", 1'200'000),
                                     600'000);
  return stream;
}

/// The 18-point fig06/fig07 design-space grid.
std::vector<core::ItrCacheConfig> sweep_grid() {
  std::vector<core::ItrCacheConfig> configs;
  for (const std::size_t assoc : {1u, 2u, 4u, 8u, 16u, 0u}) {
    for (const std::size_t size : {256u, 512u, 1024u}) {
      core::ItrCacheConfig cfg;
      cfg.num_signatures = size;
      cfg.associativity = assoc;
      configs.push_back(cfg);
    }
  }
  return configs;
}

/// The seed fig06/fig07 replay loop: one full pass over the stream per
/// sweep point.  Items = trace events x sweep points, so items_per_second
/// is directly comparable with BM_CoverageSweepEngine (their ratio is the
/// sweep speedup the acceptance criterion bounds).
void BM_CoverageSweepLegacy(benchmark::State& state) {
  const auto& stream = sweep_stream();
  const auto configs = sweep_grid();
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& cfg : configs) {
      acc += core::replay_coverage(stream, cfg).hits;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()) *
                          static_cast<std::int64_t>(configs.size()));
  state.SetLabel(std::to_string(configs.size()) + " sequential replays, " +
                 std::to_string(stream.size()) + " traces");
}
BENCHMARK(BM_CoverageSweepLegacy)->Unit(benchmark::kMillisecond);

/// The single-pass engine advancing all 18 sweep points per trace event.
void BM_CoverageSweepEngine(benchmark::State& state) {
  const auto& stream = sweep_stream();
  const auto configs = sweep_grid();
  for (auto _ : state) {
    const auto results = core::SweepEngine::run(stream, configs);
    benchmark::DoNotOptimize(results[0].counters.hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()) *
                          static_cast<std::int64_t>(configs.size()));
  state.SetLabel("single pass, " + std::to_string(stream.size()) + " traces");
}
BENCHMARK(BM_CoverageSweepEngine)->Unit(benchmark::kMillisecond);

/// Forming the trace stream from scratch (functional simulation) — the cost
/// every figure binary paid per run before the stream cache.  Items = trace
/// events, comparable with BM_StreamCacheLoad.
void BM_StreamCollect(benchmark::State& state) {
  const auto prog = workload::generate_spec("vortex", 1'200'000);
  const std::size_t events = sweep_stream().size();
  for (auto _ : state) {
    const auto stream = workload::collect_trace_stream(prog, 600'000);
    benchmark::DoNotOptimize(stream.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
  state.SetLabel(std::to_string(events) + " traces (functional sim)");
}
BENCHMARK(BM_StreamCollect)->Unit(benchmark::kMillisecond);

/// Loading the same stream from a warm cache file — what those binaries pay
/// now.  The gap to BM_StreamCollect is the per-run saving.
void BM_StreamCacheLoad(benchmark::State& state) {
  const workload::StreamKey key{"vortex", 600'000, trace::kMaxTraceLength};
  const std::string path = "perf_micro_stream_load.itrs.tmp";
  workload::save_stream(path, key, sweep_stream());
  for (auto _ : state) {
    const auto loaded = workload::load_stream(path, key);
    benchmark::DoNotOptimize(loaded->size());
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sweep_stream().size()));
  state.SetLabel(std::to_string(sweep_stream().size()) + " traces (cache hit)");
}
BENCHMARK(BM_StreamCacheLoad)->Unit(benchmark::kMillisecond);

/// One-time cost of writing the cache file (paid on the first cold run).
void BM_StreamCacheSave(benchmark::State& state) {
  const workload::StreamKey key{"vortex", 600'000, trace::kMaxTraceLength};
  const std::string path = "perf_micro_stream_save.itrs.tmp";
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::save_stream(path, key, sweep_stream()));
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sweep_stream().size()));
}
BENCHMARK(BM_StreamCacheSave)->Unit(benchmark::kMillisecond);

fi::CampaignConfig campaign_config() {
  fi::CampaignConfig cfg;
  cfg.observation_cycles = 20'000;
  cfg.warmup_instructions = 20'000;
  cfg.inject_region = 100'000;
  cfg.detected_mask_grace_cycles = 5'000;
  cfg.seed = 7;
  return cfg;
}

/// Cloning a full warmup checkpoint (cycle machine + golden reference);
/// arg selects the memory policy (0 = deep copy, 1 = copy-on-write).
void BM_CheckpointClone(benchmark::State& state) {
  const bool cow = state.range(0) != 0;
  const auto prog = workload::generate_spec("bzip", 400'000);
  auto cfg = campaign_config();
  cfg.cow_memory = cow;
  fi::FaultInjectionCampaign camp(prog, cfg);
  const fi::SimCheckpoint* ck = camp.warmup_checkpoint();
  for (auto _ : state) {
    fi::SimCheckpoint copy(*ck);
    benchmark::DoNotOptimize(copy.commits_consumed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(cow ? "cow" : "deep");
}
BENCHMARK(BM_CheckpointClone)->Arg(0)->Arg(1);

/// The flattened core's snapshot protocol on a warmed-up machine: arg 0
/// measures save (serialize into a reusable blob), arg 1 restore into a
/// same-configured machine.  Pair with BM_CheckpointClone: at campaign
/// steady state one restore replaces one full checkpoint clone per
/// injection.
void BM_SnapshotSaveRestore(benchmark::State& state) {
  const bool measure_restore = state.range(0) != 0;
  const auto prog = workload::generate_spec("bzip", 400'000);
  sim::CycleSim::Options opt;
  opt.itr = core::ItrCacheConfig{};
  sim::CycleSim machine(prog, opt);
  for (int i = 0; i < 20'000; ++i) {
    machine.advance();
    while (machine.next_itr_event().has_value()) {
    }
    while (machine.next_commit().has_value()) {
    }
  }
  sim::CycleSim::Snapshot snap;
  machine.save(snap);
  sim::CycleSim target(prog, opt);
  if (measure_restore) {
    for (auto _ : state) {
      target.restore(snap);
      benchmark::DoNotOptimize(target.decode_count());
    }
  } else {
    for (auto _ : state) {
      machine.save(snap);
      benchmark::DoNotOptimize(snap.blob.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(measure_restore ? "restore" : "save");
}
BENCHMARK(BM_SnapshotSaveRestore)->Arg(0)->Arg(1);

/// One injection simulated from instruction zero (the pre-checkpoint
/// reference path).
void BM_InjectionFromScratch(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 400'000);
  fi::FaultInjectionCampaign camp(prog, campaign_config());
  std::uint64_t commits = 0;
  for (auto _ : state) {
    const auto res = camp.run_one(25'000, 9);
    commits += res.faulty_commits;
    benchmark::DoNotOptimize(res.outcome);
  }
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InjectionFromScratch)->Unit(benchmark::kMillisecond);

/// The same injection cloned from the warmup checkpoint (PR 1's run()
/// path); the gap to BM_InjectionFromScratch is the per-fault warmup saving.
void BM_InjectionFromCheckpoint(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 400'000);
  fi::FaultInjectionCampaign camp(prog, campaign_config());
  const fi::SimCheckpoint* ck = camp.warmup_checkpoint();
  std::uint64_t commits = 0;
  for (auto _ : state) {
    const auto res = camp.run_one_from(*ck, 25'000, 9);
    commits += res.faulty_commits;
    benchmark::DoNotOptimize(res.outcome);
  }
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InjectionFromCheckpoint)->Unit(benchmark::kMillisecond);

/// A/B partner for BM_InjectionFromCheckpoint: the identical injection,
/// resumed by restoring the rung's snapshot into a persistent scratch pair
/// instead of copy-constructing fresh simulators per fault (the seed's
/// clone path).  The gap is what the flattened snapshot fast path buys per
/// injection at campaign steady state.
void BM_InjectionSnapshotRestore(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 400'000);
  fi::FaultInjectionCampaign camp(prog, campaign_config());
  const fi::SimCheckpoint* ck = camp.warmup_checkpoint();
  auto scratch = camp.make_scratch();
  std::uint64_t commits = 0;
  for (auto _ : state) {
    const auto res = camp.run_one_scratch(*scratch, *ck, 25'000, 9);
    commits += res.faulty_commits;
    benchmark::DoNotOptimize(res.outcome);
  }
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InjectionSnapshotRestore)->Unit(benchmark::kMillisecond);

/// A fault landing deep in the inject region, resumed from the warmup
/// checkpoint (arg 0) vs the nearest ladder rung (arg 1).  The gap is the
/// trimmed re-execution ERASER-style checkpointing buys per injection.
void BM_InjectionFarTarget(benchmark::State& state) {
  const bool ladder = state.range(0) != 0;
  constexpr std::uint64_t kTarget = 115'000;  // warmup 20k + region 100k
  const auto prog = workload::generate_spec("bzip", 400'000);
  fi::FaultInjectionCampaign camp(prog, campaign_config());
  const fi::SimCheckpoint* ck =
      ladder ? camp.nearest_checkpoint(kTarget) : camp.warmup_checkpoint();
  std::uint64_t commits = 0;
  for (auto _ : state) {
    const auto res = camp.run_one_from(*ck, kTarget, 9);
    commits += res.faulty_commits;
    benchmark::DoNotOptimize(res.outcome);
  }
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(ladder ? "nearest ladder rung" : "warmup checkpoint");
}
BENCHMARK(BM_InjectionFarTarget)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void run_campaign_loop(benchmark::State& state, const isa::Program& prog,
                       const fi::CampaignConfig& cfg, std::uint64_t faults,
                       unsigned threads) {
  std::uint64_t injections = 0, commits = 0;
  for (auto _ : state) {
    fi::FaultInjectionCampaign camp(prog, cfg);
    const auto summary = camp.run(faults, threads);
    injections += summary.total;
    for (const auto& r : summary.results) commits += r.faulty_commits;
    benchmark::DoNotOptimize(summary.counts[0]);
  }
  state.counters["injections/sec"] = benchmark::Counter(
      static_cast<double>(injections), benchmark::Counter::kIsRate);
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
}

/// End-to-end campaign throughput at the default (ladder + predecode + COW)
/// configuration; arg = worker threads (0 = hardware concurrency).
void BM_CampaignThroughput(benchmark::State& state) {
  const auto threads =
      util::resolve_threads(static_cast<std::uint64_t>(state.range(0)));
  const auto prog = workload::generate_spec("bzip", 400'000);
  run_campaign_loop(state, prog, campaign_config(), /*faults=*/16, threads);
  state.SetLabel(std::to_string(threads) + " threads");
}

/// Campaign throughput at the default fig08 configuration (2M-instruction
/// bzip, 100k-cycle window, 50k warmup, 1M inject region).  arg0 selects the
/// engine: 1 = this PR's fast path (checkpoint ladder, predecoded programs,
/// copy-on-write snapshots), 0 = the PR 1 path (single warmup checkpoint,
/// decode per dynamic instruction, deep-copied memory).  arg1 = threads.
void BM_CampaignFig08(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  const auto threads =
      util::resolve_threads(static_cast<std::uint64_t>(state.range(1)));
  const auto prog = workload::generate_spec("bzip", 2'000'000);
  fi::CampaignConfig cfg;
  cfg.observation_cycles = 100'000;
  cfg.warmup_instructions = 50'000;
  cfg.inject_region = 1'000'000;
  cfg.seed = 1;
  if (!fast) {
    cfg.checkpoint_mode = fi::CheckpointMode::kWarmup;
    cfg.use_predecode = false;
    cfg.cow_memory = false;
  }
  run_campaign_loop(state, prog, cfg, /*faults=*/16, threads);
  state.SetLabel(std::string(fast ? "ladder+predecode+cow" : "PR1 single-ckpt") +
                 ", " + std::to_string(threads) + " threads");
}

/// The fig08 campaign at a fault count high enough that per-fault
/// simulation dominates the fixed ladder/analysis costs, with the pruner
/// off (arg0=0) vs fully on (arg0=1: early-exit convergence +
/// equivalence-class synthesis).  The injections/sec ratio between the
/// two lanes is the campaign speedup the pruning acceptance criterion
/// bounds; the outcome CSVs are byte-identical either way (see the
/// prune-smoke ctest and the pruned-vs-unpruned fuzz oracle).
/// arg1 = threads.
void BM_CampaignPruned(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const auto threads =
      util::resolve_threads(static_cast<std::uint64_t>(state.range(1)));
  const auto prog = workload::generate_spec("bzip", 2'000'000);
  fi::CampaignConfig cfg;
  cfg.observation_cycles = 100'000;
  cfg.warmup_instructions = 50'000;
  cfg.inject_region = 1'000'000;
  cfg.seed = 1;
  cfg.prune.mode = prune ? fi::PruneMode::kFull : fi::PruneMode::kOff;
  run_campaign_loop(state, prog, cfg, /*faults=*/300, threads);
  state.SetLabel(std::string(prune ? "prune=full" : "prune=off") + ", " +
                 std::to_string(threads) + " threads");
}

/// The fig08 campaign under the batched divergence-only engine
/// (--exec=batch): replicas cloned from a shared fault-free walker, commits
/// compared against a recorded golden stream, retirement on divergence-window
/// close or proven reconvergence.  Fault count is high enough that the fixed
/// golden/ladder costs amortize away; the injections/sec counter against
/// BM_CampaignPruned's prune=full single-thread lane is the speedup the
/// batching acceptance criterion bounds (>= 3x, >= 2000 inj/s).  Outcomes are
/// byte-identical to the sequential engine (batch_smoke ctest, batch-vs-seq
/// fuzz oracle).  arg0 = batch width, arg1 = threads.
void BM_CampaignBatched(benchmark::State& state) {
  const auto width = static_cast<std::uint64_t>(state.range(0));
  const auto threads =
      util::resolve_threads(static_cast<std::uint64_t>(state.range(1)));
  const auto prog = workload::generate_spec("bzip", 2'000'000);
  fi::CampaignConfig cfg;
  cfg.observation_cycles = 100'000;
  cfg.warmup_instructions = 50'000;
  cfg.inject_region = 1'000'000;
  cfg.seed = 1;
  cfg.prune.mode = fi::PruneMode::kFull;
  cfg.exec = fi::ExecMode::kBatch;
  cfg.batch_width = width;
  run_campaign_loop(state, prog, cfg, /*faults=*/3'000, threads);
  state.SetLabel("batch w" + std::to_string(width) + ", " +
                 std::to_string(threads) + " threads");
}

/// Recording the golden commit stream: one functional pass over the fig08
/// probe horizon, appended into the SoA lanes replicas later compare against.
void BM_GoldenStreamRecord(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 400'000);
  const std::uint64_t horizon = fi::golden_probe_horizon(
      sim::PipelineConfig{}, /*warmup_instructions=*/10'000,
      /*inject_region=*/200'000, /*observation_cycles=*/20'000,
      /*grace_cycles=*/0);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    sim::FunctionalSim golden(prog);
    const auto stream = sim::GoldenStream::record(golden, horizon);
    steps += stream.size();
    benchmark::DoNotOptimize(stream.size());
  }
  state.counters["steps/sec"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}

/// Replaying against a recorded stream: the per-commit compare every batch
/// replica performs while divergent — the engine's innermost hot path.
void BM_GoldenStreamReplay(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 400'000);
  const std::uint64_t horizon = fi::golden_probe_horizon(
      sim::PipelineConfig{}, /*warmup_instructions=*/10'000,
      /*inject_region=*/200'000, /*observation_cycles=*/20'000,
      /*grace_cycles=*/0);
  sim::FunctionalSim golden(prog);
  const auto stream = sim::GoldenStream::record(golden, horizon);
  // A fault-free cycle-level run's commits match the stream position for
  // position; collected once, scanned per iteration.
  std::vector<sim::CommitRecord> commits;
  sim::CycleSim cs(prog, sim::CycleSim::Options{});
  while (commits.size() < stream.size() && cs.advance()) {
    while (auto c = cs.next_commit()) commits.push_back(*c);
  }
  while (auto c = cs.next_commit()) commits.push_back(*c);
  std::uint64_t compared = 0;
  for (auto _ : state) {
    bool all = true;
    for (std::size_t i = 0; i < commits.size(); ++i) {
      all &= stream.matches(commits[i], i);
    }
    compared += commits.size();
    benchmark::DoNotOptimize(all);
  }
  state.counters["compares/sec"] = benchmark::Counter(
      static_cast<double>(compared), benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(commits.size()) + " commits");
}
BENCHMARK(BM_GoldenStreamRecord)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GoldenStreamReplay)->Unit(benchmark::kMillisecond);

/// Registers the campaign benchmarks with the thread counts requested via
/// --threads (always including the serial lane for the speedup baseline).
void register_campaign_benchmarks(std::int64_t threads) {
  // Wall-clock timing: the work fans out over a worker pool, so CPU-time
  // rates would overstate throughput exactly when threads > cores.
  auto* tp = benchmark::RegisterBenchmark("BM_CampaignThroughput",
                                          BM_CampaignThroughput)
                 ->Unit(benchmark::kMillisecond)
                 ->UseRealTime()
                 ->MeasureProcessCPUTime();
  tp->Arg(1);
  if (threads != 1) tp->Arg(threads);

  auto* f8 = benchmark::RegisterBenchmark("BM_CampaignFig08", BM_CampaignFig08)
                 ->Unit(benchmark::kMillisecond)
                 ->UseRealTime()
                 ->MeasureProcessCPUTime();
  for (const std::int64_t fast : {1, 0}) {
    f8->Args({fast, 1});
    if (threads != 1) f8->Args({fast, threads});
  }

  auto* pr = benchmark::RegisterBenchmark("BM_CampaignPruned",
                                          BM_CampaignPruned)
                 ->Unit(benchmark::kMillisecond)
                 ->UseRealTime()
                 ->MeasureProcessCPUTime();
  for (const std::int64_t prune : {1, 0}) {
    pr->Args({prune, 1});
    if (threads != 1) pr->Args({prune, threads});
  }

  auto* ba = benchmark::RegisterBenchmark("BM_CampaignBatched",
                                          BM_CampaignBatched)
                 ->Unit(benchmark::kMillisecond)
                 ->UseRealTime()
                 ->MeasureProcessCPUTime();
  ba->Args({16, 1});
  if (threads != 1) ba->Args({16, threads});
}

/// Strict --threads value parse; prints the offending value and exits 2 on
/// junk instead of the silent-truncation/terminate behaviour of std::stoll.
std::int64_t parse_threads_or_die(const std::string& value) {
  const auto parsed = itr::util::parse_u64(value);
  if (!parsed || *parsed > std::numeric_limits<std::int64_t>::max()) {
    std::fprintf(stderr, "perf_micro: --threads: invalid unsigned integer '%s'\n",
                 value.c_str());
    std::exit(2);
  }
  return static_cast<std::int64_t>(*parsed);
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out --threads (routed to the campaign benchmarks' thread-count
  // args) and default the JSON output file when the caller didn't pick one.
  std::int64_t threads = 8;
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(2);
  bool has_out = false;
  bool allow_debug = false;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--threads") {
      if (i + 1 < argc) threads = parse_threads_or_die(argv[++i]);
      continue;
    }
    if (a.rfind("--threads=", 0) == 0) {
      threads = parse_threads_or_die(std::string(a.substr(a.find('=') + 1)));
      continue;
    }
    if (a == "--allow-debug") {
      allow_debug = true;
      continue;
    }
    if (a.rfind("--benchmark_out=", 0) == 0) has_out = true;
    args.push_back(argv[i]);
  }
#ifdef NDEBUG
  benchmark::AddCustomContext("itr_build_type", "release");
#else
  // A debug build measures the optimizer being off, not the library; numbers
  // from it must never land in BENCH_perf.json by accident.
  benchmark::AddCustomContext("itr_build_type", "debug");
  if (!allow_debug) {
    std::fprintf(stderr,
                 "perf_micro: refusing to run: this binary was compiled "
                 "without NDEBUG (a debug build), so its numbers are "
                 "meaningless as a performance baseline.\n"
                 "Build with a release config (e.g. cmake --preset release) "
                 "or pass --allow-debug to run anyway.\n");
    return 2;
  }
  std::fprintf(stderr,
               "perf_micro: WARNING: running a debug build (--allow-debug); "
               "do not commit the resulting BENCH_perf.json.\n");
#endif
  (void)allow_debug;
  if (!has_out) {
    storage.emplace_back("--benchmark_out=BENCH_perf.json");
    storage.emplace_back("--benchmark_out_format=json");
    for (std::string& s : storage) args.push_back(s.data());
  }
  register_campaign_benchmarks(threads);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
