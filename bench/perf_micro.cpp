// Google-benchmark microbenchmarks for the hot paths of the library:
// decode + signature generation, ITR cache probe/install, functional
// simulation and cycle-level simulation throughput.
#include <benchmark/benchmark.h>

#include "isa/decode.hpp"
#include "itr/itr_cache.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace itr;

void BM_DecodeSignals(benchmark::State& state) {
  util::Xoshiro256StarStar rng(1);
  std::vector<std::uint64_t> raws;
  for (int i = 0; i < 1024; ++i) {
    raws.push_back(isa::encode(isa::make_rr(isa::Opcode::kAdd,
                                            static_cast<int>(rng.below(32)),
                                            static_cast<int>(rng.below(32)),
                                            static_cast<int>(rng.below(32)))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode_raw(raws[i++ & 1023]).pack());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeSignals);

void BM_SignatureFold(benchmark::State& state) {
  const auto sig = isa::decode(isa::make_rr(isa::Opcode::kAdd, 1, 2, 3));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= sig.pack();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureFold);

void BM_ItrCacheProbe(benchmark::State& state) {
  core::ItrCacheConfig cfg;
  cfg.num_signatures = static_cast<std::size_t>(state.range(0));
  core::ItrCache cache(cfg);
  // Warm with a working set half the cache size.
  const std::uint64_t ws = cfg.num_signatures / 2;
  trace::TraceRecord rec;
  rec.num_instructions = 6;
  for (std::uint64_t i = 0; i < ws; ++i) {
    rec.start_pc = 0x10000 + i * 48;
    rec.signature = i;
    cache.probe(rec);
    cache.install(rec);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    rec.start_pc = 0x10000 + (i++ % ws) * 48;
    rec.signature = i % ws;
    benchmark::DoNotOptimize(cache.probe(rec).outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ItrCacheProbe)->Arg(256)->Arg(1024);

void BM_FunctionalSim(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  sim::FunctionalSim fsim(prog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.step().fx.next_pc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("instructions");
}
BENCHMARK(BM_FunctionalSim);

void BM_CycleSim(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  sim::CycleSim::Options opt;
  opt.itr = core::ItrCacheConfig{};
  sim::CycleSim cs(prog, std::move(opt));
  for (auto _ : state) {
    cs.advance();
    while (cs.next_commit().has_value()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("instructions (with ITR)");
}
BENCHMARK(BM_CycleSim);

}  // namespace

BENCHMARK_MAIN();
