// Google-benchmark microbenchmarks for the hot paths of the library:
// decode + signature generation, ITR cache probe/install, functional and
// cycle-level simulation throughput, and fault-injection campaign
// throughput (serial vs parallel, scratch vs warmup-checkpoint).
//
// Unless --benchmark_out is given, results are also written to
// BENCH_perf.json (google-benchmark JSON) for machine consumption.
// --threads is accepted and ignored so sweep scripts can pass one uniform
// flag set; campaign thread counts are benchmark args here.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "fi/classify.hpp"
#include "isa/decode.hpp"
#include "itr/itr_cache.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace {

using namespace itr;

void BM_DecodeSignals(benchmark::State& state) {
  util::Xoshiro256StarStar rng(1);
  std::vector<std::uint64_t> raws;
  for (int i = 0; i < 1024; ++i) {
    raws.push_back(isa::encode(isa::make_rr(isa::Opcode::kAdd,
                                            static_cast<int>(rng.below(32)),
                                            static_cast<int>(rng.below(32)),
                                            static_cast<int>(rng.below(32)))));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode_raw(raws[i++ & 1023]).pack());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeSignals);

void BM_SignatureFold(benchmark::State& state) {
  const auto sig = isa::decode(isa::make_rr(isa::Opcode::kAdd, 1, 2, 3));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc ^= sig.pack();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureFold);

void BM_ItrCacheProbe(benchmark::State& state) {
  core::ItrCacheConfig cfg;
  cfg.num_signatures = static_cast<std::size_t>(state.range(0));
  core::ItrCache cache(cfg);
  // Warm with a working set half the cache size.
  const std::uint64_t ws = cfg.num_signatures / 2;
  trace::TraceRecord rec;
  rec.num_instructions = 6;
  for (std::uint64_t i = 0; i < ws; ++i) {
    rec.start_pc = 0x10000 + i * 48;
    rec.signature = i;
    cache.probe(rec);
    cache.install(rec);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    rec.start_pc = 0x10000 + (i++ % ws) * 48;
    rec.signature = i % ws;
    benchmark::DoNotOptimize(cache.probe(rec).outcome);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ItrCacheProbe)->Arg(256)->Arg(1024);

void BM_FunctionalSim(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  sim::FunctionalSim fsim(prog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.step().fx.next_pc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("instructions");
}
BENCHMARK(BM_FunctionalSim);

void BM_CycleSim(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 100'000'000);
  sim::CycleSim::Options opt;
  opt.itr = core::ItrCacheConfig{};
  sim::CycleSim cs(prog, std::move(opt));
  for (auto _ : state) {
    cs.advance();
    while (cs.next_commit().has_value()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("instructions (with ITR)");
}
BENCHMARK(BM_CycleSim);

fi::CampaignConfig campaign_config() {
  fi::CampaignConfig cfg;
  cfg.observation_cycles = 20'000;
  cfg.warmup_instructions = 20'000;
  cfg.inject_region = 100'000;
  cfg.detected_mask_grace_cycles = 5'000;
  cfg.seed = 7;
  return cfg;
}

/// End-to-end campaign throughput; arg = worker threads (0 = hardware
/// concurrency).  Reports injections/sec and faulty commits/sec.
void BM_CampaignThroughput(benchmark::State& state) {
  const auto threads = util::resolve_threads(static_cast<std::uint64_t>(state.range(0)));
  const auto prog = workload::generate_spec("bzip", 400'000);
  const auto cfg = campaign_config();
  constexpr std::uint64_t kFaults = 16;
  std::uint64_t injections = 0, commits = 0;
  for (auto _ : state) {
    fi::FaultInjectionCampaign camp(prog, cfg);
    const auto summary = camp.run(kFaults, threads);
    injections += summary.total;
    for (const auto& r : summary.results) commits += r.faulty_commits;
    benchmark::DoNotOptimize(summary.counts[0]);
  }
  state.counters["injections/sec"] = benchmark::Counter(
      static_cast<double>(injections), benchmark::Counter::kIsRate);
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_CampaignThroughput)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// One injection simulated from instruction zero (the pre-checkpoint
/// reference path).
void BM_InjectionFromScratch(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 400'000);
  fi::FaultInjectionCampaign camp(prog, campaign_config());
  std::uint64_t commits = 0;
  for (auto _ : state) {
    const auto res = camp.run_one(25'000, 9);
    commits += res.faulty_commits;
    benchmark::DoNotOptimize(res.outcome);
  }
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InjectionFromScratch)->Unit(benchmark::kMillisecond);

/// The same injection cloned from the warmup checkpoint (what run() does);
/// the gap to BM_InjectionFromScratch is the per-fault warmup saving.
void BM_InjectionFromCheckpoint(benchmark::State& state) {
  const auto prog = workload::generate_spec("bzip", 400'000);
  fi::FaultInjectionCampaign camp(prog, campaign_config());
  const fi::SimCheckpoint* ck = camp.warmup_checkpoint();
  std::uint64_t commits = 0;
  for (auto _ : state) {
    const auto res = camp.run_one_from(*ck, 25'000, 9);
    commits += res.faulty_commits;
    benchmark::DoNotOptimize(res.outcome);
  }
  state.counters["commits/sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InjectionFromCheckpoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --threads (accepted for flag-set uniformity with the exhibit
  // binaries) and default the JSON output file when the caller didn't pick
  // one.
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(2);
  bool has_out = false;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--threads") {
      if (i + 1 < argc) ++i;
      continue;
    }
    if (a.rfind("--threads=", 0) == 0) continue;
    if (a.rfind("--benchmark_out=", 0) == 0) has_out = true;
    args.push_back(argv[i]);
  }
  if (!has_out) {
    storage.emplace_back("--benchmark_out=BENCH_perf.json");
    storage.emplace_back("--benchmark_out_format=json");
    for (std::string& s : storage) args.push_back(s.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
