// Section 2.3 extension: coarse-grain checkpointing triggered when the ITR
// cache holds zero unchecked lines; rollback recovers misses that a pipeline
// flush cannot.
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("ablation_checkpoint", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 6'000'000);
    const auto names = bench::select_benchmarks(flags, workload::coverage_figure_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    bench::select_stream_cache(flags);
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Ablation: coarse-grain checkpointing (paper Section 2.3)",
                "Every missed-but-later-referenced instance becomes recoverable by\n"
                "rolling back to the live checkpoint; residual loss = evicted misses.",
                bench::checkpoint_table(names, insns, threads));
    return 0;
  });
}
