// Section 3 future-work filter: fall back to conventional time redundancy
// (redundant fetch+decode) only on ITR cache misses.
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("ablation_selective_redundancy", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 6'000'000);
    const auto names = bench::select_benchmarks(flags, workload::coverage_figure_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    bench::select_stream_cache(flags);
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Ablation: selective time redundancy on ITR miss (paper Section 3)",
                "Closing the recovery hole costs only the miss fraction of full time\n"
                "redundancy's frontend energy.",
                bench::selective_redundancy_table(names, insns, threads));
    return 0;
  });
}
