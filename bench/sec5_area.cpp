// Section 5 area comparison: the ITR cache vs structural duplication of the
// S/390 G5 I-unit, using the published die-photo numbers plus our area model.
#include "figlib.hpp"
#include "power/cacti.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("sec5_area", [&] {
    const util::CliFlags flags(argc, argv);
    flags.get_bool("csv");
    // This exhibit is constant; accept the common sweep flags so
    // run_benches.sh can forward one uniform flag set to every binary.
    flags.get_u64("threads", 0);
    flags.get_u64("insns", 0);
    flags.get_string("benchmarks", "");
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();

    util::Table table({"structure", "area cm^2", "vs I-unit"});
    const double iunit = power::kG5IUnitAreaCm2;
    const double btb = power::kG5BtbAreaCm2;
    const double itr_model = power::area_cm2(power::itr_cache_geometry(1));
    const double itr_2p = power::area_cm2(power::itr_cache_geometry(2));
    table.begin_row().add("G5 I-unit (die photo)").add(iunit, 2).add(1.0, 3);
    table.begin_row().add("G5 BTB-like structure (die photo)").add(btb, 2).add(btb / iunit, 3);
    table.begin_row().add("ITR cache 1024x64b 2-way (model)").add(itr_model, 2).add(itr_model / iunit, 3);
    table.begin_row().add("ITR cache, dual-ported (model)").add(itr_2p, 2).add(itr_2p / iunit, 3);

    bench::emit(flags, "Section 5: area comparison",
                "Paper: the ITR cache is about one seventh the area of the I-unit,\n"
                "making ITR far more area-effective than structural duplication.",
                table);
    return 0;
  });
}
