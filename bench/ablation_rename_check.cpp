// Paper Section 1 extension: "indexes into the rename map table ... are
// constant across all instances.  Recording and confirming their correctness
// will boost the fault coverage of the rename unit ... RNA cannot detect
// pure source renaming errors like reading from a wrong index in the rename
// map table."  This bench injects map-table index-port faults and shows the
// decode-signal signature is blind to them while the rename-index signature
// catches them.
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("ablation_rename_check", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 400'000);
    const auto faults = flags.get_u64("faults", 30);
    const auto seed = flags.get_u64("seed", 1);
    const auto names = bench::select_benchmarks(flags, workload::coverage_figure_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Ablation: rename-index ITR check (paper Section 1 extension)",
                "Rename map-table port faults are invisible to the decode-signal\n"
                "signature (the fault is past decode); the rename-index signature\n"
                "closes the gap.",
                bench::rename_check_table(names, insns, faults, seed, threads));
    return 0;
  });
}
