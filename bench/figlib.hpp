// Experiment drivers shared by the per-exhibit bench binaries.
//
// Each function regenerates one class of paper exhibit; the thin main() in
// each fig*/table* binary parses flags, calls one driver, and prints.
//
// Every builder takes a `threads` lane count (resolved by the caller; 1 =
// serial).  Benchmarks compute their rows concurrently into per-benchmark
// sub-tables that are merged in input order, so the output bytes are
// identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fi/classify.hpp"
#include "itr/coverage.hpp"
#include "trace/analysis.hpp"
#include "util/table.hpp"

namespace itr::bench {

/// Runs `name` for `insns` instructions and returns the repetition analysis
/// (Figures 1-4, Table 1 input).
trace::RepetitionAnalyzer analyze_benchmark(const std::string& name,
                                            std::uint64_t insns);

/// Figures 1/2: cumulative %-of-dynamic-instructions rows for the top-N
/// static traces of each benchmark.
util::Table repetition_table(const std::vector<std::string>& names,
                             std::uint64_t insns, unsigned threads = 1);

/// Figures 3/4: cumulative % of dynamic instructions from traces repeating
/// within each 500-instruction distance bin (up to 10 000, plus overflow).
util::Table proximity_table(const std::vector<std::string>& names,
                            std::uint64_t insns, unsigned threads = 1);

/// Table 1: measured static-trace counts next to the paper's numbers.
util::Table static_trace_table(const std::vector<std::string>& names,
                               std::uint64_t insns, unsigned threads = 1);

/// Paper's number for Table 1 (0 when the benchmark is not listed).
std::uint64_t paper_static_traces(const std::string& name);

/// The Section 3 design-space sweep: associativities dm,2,4,8,16,fa crossed
/// with 256/512/1024 signatures.  `detection` selects Figure 6 (detection
/// loss) vs Figure 7 (recovery loss).
util::Table coverage_sweep_table(const std::vector<std::string>& names,
                                 std::uint64_t insns, bool detection,
                                 unsigned threads = 1);

/// Figure 8: fault-injection outcome breakdown per benchmark plus the
/// average column, using the paper's 2-way 1024-signature ITR cache.
/// `mode`/`ladder_interval` pick how each injection's prefix is re-executed
/// (scratch / single warmup checkpoint / checkpoint ladder), `prune` how
/// aggressively the campaign skips provably-redundant simulation, and
/// `exec`/`batch_width` the campaign engine (sequential, or batched replicas
/// over a shared golden stream); the table bytes are identical under every
/// mode, prune level and engine.
util::Table fault_injection_table(const std::vector<std::string>& names,
                                  std::uint64_t insns, std::uint64_t faults,
                                  std::uint64_t window_cycles, std::uint64_t seed,
                                  unsigned threads = 1,
                                  fi::CheckpointMode mode = fi::CheckpointMode::kLadder,
                                  std::uint64_t ladder_interval = 0,
                                  fi::PruneConfig prune = {},
                                  fi::ExecMode exec = fi::ExecMode::kSeq,
                                  std::uint64_t batch_width = 16);

/// Figure 9: energy of the ITR cache (1 rd/wr and 1rd+1wr ports) vs
/// redundant I-cache fetch, per benchmark, from cycle-level access counts.
util::Table energy_table(const std::vector<std::string>& names, std::uint64_t insns,
                         unsigned threads = 1);

/// Section 2.3 extension: coarse-grain checkpointing statistics.
util::Table checkpoint_table(const std::vector<std::string>& names,
                             std::uint64_t insns, unsigned threads = 1);

/// Replacement-policy ablation: plain LRU vs checked-first LRU.
util::Table checked_lru_table(const std::vector<std::string>& names,
                              std::uint64_t insns, unsigned threads = 1);

/// Section 3 future-work filter: selective time redundancy on ITR miss.
util::Table selective_redundancy_table(const std::vector<std::string>& names,
                                       std::uint64_t insns, unsigned threads = 1);

/// Trace-length design-space ablation: the paper fixes the trace limit at 16
/// instructions; this sweeps it (4/8/16/32) and reports static-trace counts
/// and coverage loss at the paper's cache configuration.
util::Table trace_length_table(const std::vector<std::string>& names,
                               std::uint64_t insns, unsigned threads = 1);

/// Rename-check extension (paper Section 1): coverage of rename map-table
/// port faults with and without the rename-index ITR signature.
util::Table rename_check_table(const std::vector<std::string>& names,
                               std::uint64_t insns, std::uint64_t faults,
                               std::uint64_t seed, unsigned threads = 1);

/// Performance-overhead ablation: IPC without ITR hardware vs with ITR at
/// increasing probe latencies (the commit logic stalls a trace-ending
/// instruction until its chk/miss bit is set, paper Section 2.2).
util::Table perf_overhead_table(const std::vector<std::string>& names,
                                std::uint64_t insns, unsigned threads = 1);

}  // namespace itr::bench
