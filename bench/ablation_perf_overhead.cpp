// Performance-overhead ablation: the paper positions ITR as low-overhead;
// here the commit-side probe-latency stall is the only timing coupling, and
// it stays invisible until the probe latency approaches the frontend depth.
#include "figlib.hpp"
#include "workload/spec_profiles.hpp"

int main(int argc, char** argv) {
  using namespace itr;
  return bench::guarded("ablation_perf_overhead", [&] {
    const util::CliFlags flags(argc, argv);
    const auto insns = flags.get_u64("insns", 2'000'000);
    const auto names = bench::select_benchmarks(flags, workload::spec_all_names());
    const auto threads = bench::select_threads(flags);
    flags.get_bool("csv");
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();
    bench::emit(flags, "Ablation: ITR performance overhead (IPC vs probe latency)",
                "Paper claim: ITR avoids the performance cost of time-redundant\n"
                "execution; the only new pipeline coupling is the commit-side wait\n"
                "for the dispatch-time ITR cache read.",
                bench::perf_overhead_table(names, insns, threads));
    return 0;
  });
}
