#!/bin/bash
cd /root/repo
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename $b) ====="
    "$b"
    echo
  fi
done
