#!/usr/bin/env bash
# Runs every paper-exhibit bench binary in build/bench.
#
# Usage:
#   ./run_benches.sh [--csv] [--out DIR] [--baseline FILE] [extra flags...]
#
#   --csv        pass --csv to every binary (CSV instead of aligned tables)
#   --out DIR    write each exhibit's output to DIR/<binary>.csv (implies
#                --csv) instead of stdout
#   --baseline FILE
#                after the exhibits, run perf_micro (writing BENCH_perf.json)
#                and compare against FILE with tools/bench_diff.py; a >10%
#                throughput regression fails the script (>5% for BM_CycleSim,
#                the simulator's core instruction-throughput number)
#   --serve DIR  campaign-fleet worker mode: instead of the exhibit loop,
#                serve the sharded campaign in DIR (see itr_sim
#                --campaign-shard / --campaign-merge and EXPERIMENTS.md).
#                The extra flags — --stream-cache DIR in particular, plus
#                --threads, --lease-seconds, --max-shards — are forwarded
#                verbatim to the worker, so a fleet launched through this
#                script shares one trace-stream cache the same way the
#                exhibit loop does
#   extra flags  forwarded verbatim to every binary (e.g. --threads 8,
#                --insns 500000, --benchmarks bzip,gcc)
#
# Skips CMake droppings and anything that is not an executable regular file.
# perf_micro is excluded from the exhibit loop: it is a google-benchmark
# microbench, run separately when --baseline is given.
set -euo pipefail

cd "$(dirname "$0")"
bench_dir=build/bench

csv=0
out_dir=""
baseline=""
serve_dir=""
passthrough=()
while [ $# -gt 0 ]; do
  case "$1" in
    --csv) csv=1 ;;
    --out)
      [ $# -ge 2 ] || { echo "error: --out needs a directory" >&2; exit 2; }
      out_dir=$2
      csv=1
      shift
      ;;
    --baseline)
      [ $# -ge 2 ] || { echo "error: --baseline needs a file" >&2; exit 2; }
      baseline=$2
      shift
      ;;
    --serve)
      [ $# -ge 2 ] || { echo "error: --serve needs a shard directory" >&2; exit 2; }
      serve_dir=$2
      shift
      ;;
    *) passthrough+=("$1") ;;
  esac
  shift
done

if [ -n "$serve_dir" ]; then
  itr_sim=build/tools/itr_sim
  [ -x "$itr_sim" ] || { echo "error: $itr_sim not found; build first" >&2; exit 2; }
  # Worker mode: every extra flag (--stream-cache, --threads, ...) goes
  # straight through to the serve loop; run this from as many processes or
  # hosts (shared filesystem) as you like, then itr_sim --campaign-merge.
  exec "$itr_sim" --campaign-serve --shard-dir "$serve_dir" \
    ${passthrough[@]+"${passthrough[@]}"}
fi

[ -z "$baseline" ] || [ -f "$baseline" ] || {
  echo "error: baseline $baseline not found" >&2; exit 2; }

[ -d "$bench_dir" ] || { echo "error: $bench_dir not found; build first" >&2; exit 2; }
[ -z "$out_dir" ] || mkdir -p "$out_dir"

flags=()
[ "$csv" -eq 0 ] || flags+=(--csv)
flags+=(${passthrough[@]+"${passthrough[@]}"})

for b in "$bench_dir"/*; do
  name=$(basename "$b")
  # Executable regular files only; skip build-system files and the microbench.
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$name" in
    CMakeFiles|cmake_install.cmake|CTestTestfile.cmake|Makefile|*.cmake|*.ninja|perf_micro) continue ;;
  esac
  if [ -n "$out_dir" ]; then
    echo "$name -> $out_dir/$name.csv"
    "$b" ${flags[@]+"${flags[@]}"} > "$out_dir/$name.csv"
  else
    echo "===== $name ====="
    "$b" ${flags[@]+"${flags[@]}"}
    echo
  fi
done

if [ -n "$baseline" ]; then
  echo "===== perf_micro (diff vs $baseline) ====="
  # Forward only --threads: perf_micro routes it to the campaign benchmarks;
  # the exhibit-only flags (--insns, --benchmarks, ...) are not its business.
  pm_flags=()
  prev=""
  for a in ${passthrough[@]+"${passthrough[@]}"}; do
    [ "$prev" != "--threads" ] || pm_flags=(--threads "$a")
    case "$a" in --threads=*) pm_flags=("$a") ;; esac
    prev=$a
  done
  "$bench_dir/perf_micro" ${pm_flags[@]+"${pm_flags[@]}"}
  # perf_micro refuses to run from a debug build of this repo (its JSON
  # context records itr_build_type); the checks below catch the other way
  # numbers go soft: a benchmark LIBRARY compiled without NDEBUG.  The
  # vendored third_party/minibench is always built release, so this only
  # trips when -DITR_USE_SYSTEM_BENCHMARK=ON picked up a debug distro
  # package — and a debug timer loop poisons every measurement, so fail.
  if grep -q '"itr_build_type": "debug"' BENCH_perf.json; then
    echo "error: BENCH_perf.json was produced by a debug build of perf_micro;" >&2
    echo "rebuild with a release config before comparing or committing it" >&2
    exit 1
  fi
  if grep -q '"library_build_type": "debug"' BENCH_perf.json; then
    echo "error: BENCH_perf.json was produced by a DEBUG benchmark library;" >&2
    echo "its timer overheads are inflated and the numbers are not" >&2
    echo "comparable.  Reconfigure without ITR_USE_SYSTEM_BENCHMARK (the" >&2
    echo "vendored third_party/minibench is always built release), or" >&2
    echo "install a release google-benchmark." >&2
    exit 1
  fi
  # BM_CycleSim is the core ns/instruction number every other exhibit rides
  # on; hold it to a tighter 5% budget than the general 10% threshold.
  python3 tools/bench_diff.py --strict BM_CycleSim:5 "$baseline" BENCH_perf.json
fi
