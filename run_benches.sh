#!/usr/bin/env bash
# Runs every paper-exhibit bench binary in build/bench.
#
# Usage:
#   ./run_benches.sh [--csv] [--out DIR] [extra flags...]
#
#   --csv        pass --csv to every binary (CSV instead of aligned tables)
#   --out DIR    write each exhibit's output to DIR/<binary>.csv (implies
#                --csv) instead of stdout
#   extra flags  forwarded verbatim to every binary (e.g. --threads 8,
#                --insns 500000, --benchmarks bzip,gcc)
#
# Skips CMake droppings and anything that is not an executable regular file.
# perf_micro is excluded: it is a google-benchmark microbench, not an exhibit.
set -euo pipefail

cd "$(dirname "$0")"
bench_dir=build/bench

csv=0
out_dir=""
passthrough=()
while [ $# -gt 0 ]; do
  case "$1" in
    --csv) csv=1 ;;
    --out)
      [ $# -ge 2 ] || { echo "error: --out needs a directory" >&2; exit 2; }
      out_dir=$2
      csv=1
      shift
      ;;
    *) passthrough+=("$1") ;;
  esac
  shift
done

[ -d "$bench_dir" ] || { echo "error: $bench_dir not found; build first" >&2; exit 2; }
[ -z "$out_dir" ] || mkdir -p "$out_dir"

flags=()
[ "$csv" -eq 0 ] || flags+=(--csv)
flags+=(${passthrough[@]+"${passthrough[@]}"})

for b in "$bench_dir"/*; do
  name=$(basename "$b")
  # Executable regular files only; skip build-system files and the microbench.
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$name" in
    CMakeFiles|cmake_install.cmake|CTestTestfile.cmake|Makefile|*.cmake|*.ninja|perf_micro) continue ;;
  esac
  if [ -n "$out_dir" ]; then
    echo "$name -> $out_dir/$name.csv"
    "$b" ${flags[@]+"${flags[@]}"} > "$out_dir/$name.csv"
  else
    echo "===== $name ====="
    "$b" ${flags[@]+"${flags[@]}"}
    echo
  fi
done
