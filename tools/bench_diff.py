#!/usr/bin/env python3
"""Compare two google-benchmark JSON files (BENCH_perf.json) and fail on
throughput regressions.

Usage:
  bench_diff.py BASELINE.json CURRENT.json [--threshold PCT] [--counters a,b]

Benchmarks are matched by name; for each tracked higher-is-better counter
present in both runs the relative change is reported, and any drop larger
than --threshold percent (default 10) fails the comparison with exit
status 1.  Benchmarks present only on one side are reported but do not
fail the diff (the benchmark set is allowed to grow).
"""

import argparse
import json
import sys

DEFAULT_COUNTERS = ("injections/sec", "commits/sec", "items_per_second")


def load_benchmarks(path):
    """Returns {benchmark name: {counter: value}} for plain iterations."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_perf.json")
    parser.add_argument("current", help="current BENCH_perf.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="max tolerated drop per counter, percent (default 10)",
    )
    parser.add_argument(
        "--counters",
        default=",".join(DEFAULT_COUNTERS),
        help="comma-separated higher-is-better counters to compare "
        "(default: %(default)s)",
    )
    args = parser.parse_args()
    counters = [c for c in args.counters.split(",") if c]

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)

    for name in sorted(set(base) - set(curr)):
        print(f"note: only in baseline: {name}")
    for name in sorted(set(curr) - set(base)):
        print(f"note: only in current:  {name}")

    regressions = []
    rows = []
    for name in sorted(set(base) & set(curr)):
        for counter in counters:
            b = base[name].get(counter)
            c = curr[name].get(counter)
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            if b <= 0:
                continue
            delta_pct = 100.0 * (c - b) / b
            rows.append((name, counter, b, c, delta_pct))
            if delta_pct < -args.threshold:
                regressions.append((name, counter, delta_pct))

    if not rows:
        print("error: no comparable counters found "
              f"(looked for: {', '.join(counters)})", file=sys.stderr)
        return 2

    width = max(len(f"{name} [{counter}]") for name, counter, *_ in rows)
    for name, counter, b, c, delta_pct in rows:
        mark = " <-- REGRESSION" if delta_pct < -args.threshold else ""
        print(f"{f'{name} [{counter}]':<{width}}  "
              f"{b:>14.4g} -> {c:>14.4g}  {delta_pct:+7.1f}%{mark}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} counter(s) regressed more than "
            f"{args.threshold:g}% vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no counter regressed more than {args.threshold:g}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
