#!/usr/bin/env python3
"""Compare two benchmark/stats JSON files and fail on regressions.

Usage:
  bench_diff.py BASELINE.json CURRENT.json [--threshold PCT] [--counters a,b]

Two input formats are auto-detected per file:

  * google-benchmark JSON (BENCH_perf.json): benchmarks are matched by name;
    for each tracked higher-is-better counter present in both runs the
    relative change is reported, and any drop larger than --threshold
    percent (default 10) fails the comparison with exit status 1.
  * itr-stats-v1 JSON (the --stats-json output of itr_sim and the bench
    binaries): metrics are matched by name; counters and gauges diff by
    value, histograms by count/sum and per-bin contents.  Stats values are
    exact simulator facts, so ANY difference fails (threshold does not
    apply); use it to pin campaign outcomes across refactors.

Entries present only on one side are reported but do not fail the diff
(the benchmark/metric set is allowed to grow).
"""

import argparse
import json
import sys

DEFAULT_COUNTERS = ("injections/sec", "commits/sec", "items_per_second")


def load_json(path):
    """Loads one input file, failing loudly on the truncation modes a crashed
    or disk-full producer leaves behind.  A silent empty/garbage input must
    not reach the diff logic: an empty stats dict would previously fall into
    the "no comparable stats" path with a message that hides the real cause.
    """
    def fail(message):
        print(f"error: {message}", file=sys.stderr)
        sys.exit(2)

    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot read '{path}': {e}")
    if not text.strip():
        fail(f"'{path}' is empty — truncated or never written by its producer")
    try:
        return json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"'{path}' is not valid JSON ({e}) — likely a truncated write "
             "by a crashed producer")


def is_stats_schema(data):
    return isinstance(data, dict) and data.get("schema") == "itr-stats-v1"


def load_benchmarks(data):
    """Returns {benchmark name: {counter: value}} for plain iterations."""
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out


def stat_fields(metric):
    """The comparable scalar facts of one itr-stats-v1 metric."""
    if metric.get("kind") == "histogram":
        fields = {"count": metric.get("count"), "sum": metric.get("sum")}
        for i, v in enumerate(metric.get("bins", [])):
            fields[f"bin[{i}]"] = v
        return fields
    return {"value": metric.get("value")}


def diff_stats(base, curr):
    """Exact comparison of two itr-stats-v1 documents. Returns exit status."""
    base_stats = base.get("stats", {})
    curr_stats = curr.get("stats", {})

    for name in sorted(set(base_stats) - set(curr_stats)):
        print(f"note: only in baseline: {name}")
    for name in sorted(set(curr_stats) - set(base_stats)):
        print(f"note: only in current:  {name}")

    mismatches = []
    compared = 0
    for name in sorted(set(base_stats) & set(curr_stats)):
        b_fields = stat_fields(base_stats[name])
        c_fields = stat_fields(curr_stats[name])
        for field in sorted(set(b_fields) | set(c_fields)):
            b = b_fields.get(field)
            c = c_fields.get(field)
            compared += 1
            if b != c:
                mismatches.append((name, field, b, c))

    if compared == 0:
        print("error: no comparable stats found", file=sys.stderr)
        return 2
    for name, field, b, c in mismatches:
        print(f"{name} [{field}]  {b} -> {c}  <-- MISMATCH")
    if mismatches:
        print(f"\nFAIL: {len(mismatches)} stat value(s) differ", file=sys.stderr)
        return 1
    print(f"\nOK: all {compared} compared stat values identical")
    return 0


def threshold_for(name, default, strict):
    """Tightest threshold whose benchmark-name prefix matches `name`."""
    pct = default
    for prefix, strict_pct in strict.items():
        if name.startswith(prefix):
            pct = min(pct, strict_pct)
    return pct


def diff_benchmarks(base_data, curr_data, counters, threshold, strict,
                    baseline_name):
    base = load_benchmarks(base_data)
    curr = load_benchmarks(curr_data)

    for name in sorted(set(base) - set(curr)):
        print(f"note: only in baseline: {name}")
    for name in sorted(set(curr) - set(base)):
        print(f"note: only in current:  {name}")

    regressions = []
    rows = []
    for name in sorted(set(base) & set(curr)):
        limit = threshold_for(name, threshold, strict)
        for counter in counters:
            b = base[name].get(counter)
            c = curr[name].get(counter)
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            if b <= 0:
                continue
            delta_pct = 100.0 * (c - b) / b
            rows.append((name, counter, b, c, delta_pct, limit))
            if delta_pct < -limit:
                regressions.append((name, counter, delta_pct, limit))

    if not rows:
        print("error: no comparable counters found "
              f"(looked for: {', '.join(counters)})", file=sys.stderr)
        return 2

    width = max(len(f"{name} [{counter}]") for name, counter, *_ in rows)
    for name, counter, b, c, delta_pct, limit in rows:
        mark = f" <-- REGRESSION (>{limit:g}%)" if delta_pct < -limit else ""
        print(f"{f'{name} [{counter}]':<{width}}  "
              f"{b:>14.4g} -> {c:>14.4g}  {delta_pct:+7.1f}%{mark}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} counter(s) regressed past their "
            f"threshold vs {baseline_name}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no counter regressed past its threshold "
          f"(default {threshold:g}%"
          + (f"; strict: {', '.join(f'{k}:{v:g}%' for k, v in strict.items())}"
             if strict else "") + ")")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline JSON (perf or itr-stats-v1)")
    parser.add_argument("current", help="current JSON (perf or itr-stats-v1)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="max tolerated drop per perf counter, percent (default 10); "
        "ignored for itr-stats-v1 inputs, which must match exactly",
    )
    parser.add_argument(
        "--counters",
        default=",".join(DEFAULT_COUNTERS),
        help="comma-separated higher-is-better perf counters to compare "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--strict",
        action="append",
        default=[],
        metavar="PREFIX:PCT",
        help="tighter per-benchmark threshold: benchmarks whose name starts "
        "with PREFIX fail on drops larger than PCT percent (repeatable; "
        "e.g. --strict BM_CycleSim:5)",
    )
    args = parser.parse_args()
    counters = [c for c in args.counters.split(",") if c]
    strict = {}
    for spec in args.strict:
        prefix, sep, pct = spec.rpartition(":")
        if not sep or not prefix:
            parser.error(f"--strict wants PREFIX:PCT, got '{spec}'")
        try:
            strict[prefix] = float(pct)
        except ValueError:
            parser.error(f"--strict wants a numeric PCT, got '{spec}'")

    base_data = load_json(args.baseline)
    curr_data = load_json(args.current)

    base_is_stats = is_stats_schema(base_data)
    curr_is_stats = is_stats_schema(curr_data)
    if base_is_stats != curr_is_stats:
        print(
            "error: mixed input kinds (one itr-stats-v1, one google-benchmark)",
            file=sys.stderr,
        )
        return 2
    if base_is_stats:
        return diff_stats(base_data, curr_data)
    return diff_benchmarks(base_data, curr_data, counters, args.threshold,
                           strict, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
