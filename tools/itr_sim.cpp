// itr_sim — command-line driver for the ITR simulator stack.
//
// Usage:
//   itr_sim --asm prog.s                      run an assembly file (cycle sim)
//   itr_sim --benchmark vortex --insns 2e6    run a synthetic SPEC analog
//   itr_sim --asm prog.s --functional         architectural-only run
//   itr_sim --asm prog.s --disasm             print the disassembly and exit
//   itr_sim --asm prog.s --no-itr             without ITR hardware
//   itr_sim --asm prog.s --recovery           enable flush-restart recovery
//   itr_sim --asm prog.s --fault-index N --fault-bit B   inject one fault
//   itr_sim --asm prog.s --characterize       trace-repetition analysis
//   itr_sim --benchmark vortex --campaign 100 --threads 8
//                                              fault-injection campaign
//
// Campaign service (sharded multi-process campaigns; see DESIGN.md §13):
//   itr_sim --campaign-shard --shard-dir D --benchmarks a,b --campaign N ...
//       carve the campaign into claimable shards (--shard-count index
//       ranges × --bit-splits signal-bit bands per benchmark)
//   itr_sim --campaign-serve --shard-dir D [--threads N] [--lease-seconds S]
//       claim and run shards until none are claimable; run any number of
//       these processes concurrently, and re-run after a kill to resume
//   itr_sim --campaign-merge --shard-dir D [--csv-out F] [--stats-json F]
//       fold completed shard journals into the byte-exact single-process
//       campaign CSV and architectural stats JSON
//
// --threads N spreads campaign injections over N workers (0 = hardware
// concurrency); the summary is identical at any thread count.
// --ckpt-mode scratch|single|ladder picks the campaign's re-execution
// strategy (default ladder; --ckpt-interval N sets the rung spacing, 0 =
// auto).  All modes produce identical summaries; only the runtime differs.
// --prune off|converge|classes|full prunes campaign work (early-exit state
// convergence / dead-bit equivalence classes; default off) without changing
// the summary; --prune-interval N sets the convergence check period.
// --exec seq|batch picks the campaign engine (default seq; batch runs up to
// --batch-width faulty replicas interleaved against a shared recorded golden
// stream — identical summary, composes with --prune and --threads).
// --stats-json FILE / --trace-out FILE write observability output (stats
// registry JSON / Chrome trace_event spans); --stats-full adds
// diagnostic-class metrics, which vary with --threads and --ckpt-mode.
//
// Exit status: the simulated program's exit status (or 1 on abnormal end).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "fi/classify.hpp"
#include "fi/service.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "trace/analysis.hpp"
#include "trace/trace_builder.hpp"
#include "itr/itr_cache.hpp"
#include "obs/registry.hpp"
#include "util/cli.hpp"
#include "util/file_io.hpp"
#include "util/obs_flags.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"
#include "workload/stream_cache.hpp"

namespace {

using namespace itr;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const char* termination_name(sim::RunTermination t) {
  switch (t) {
    case sim::RunTermination::kRunning: return "running";
    case sim::RunTermination::kExited: return "exited";
    case sim::RunTermination::kAborted: return "aborted (wild fetch)";
    case sim::RunTermination::kMachineCheck: return "machine check";
    case sim::RunTermination::kDeadlock: return "deadlock (watchdog)";
    case sim::RunTermination::kCycleLimit: return "cycle limit";
  }
  return "?";
}

int run_functional(const isa::Program& prog, std::uint64_t max_insns) {
  sim::FunctionalSim fsim(prog);
  fsim.run(max_insns);
  std::fputs(fsim.output().c_str(), stdout);
  if (!fsim.output().empty()) std::fputc('\n', stdout);
  std::fprintf(stderr, "[itr_sim] %llu instructions, %s\n",
               static_cast<unsigned long long>(fsim.instructions_retired()),
               fsim.done() ? (fsim.aborted() ? "aborted" : "exited") : "budget reached");
  return fsim.done() && !fsim.aborted() ? fsim.exit_status() : 1;
}

int characterize(const isa::Program& prog, std::uint64_t max_insns) {
  trace::RepetitionAnalyzer an;
  trace::TraceBuilder tb([&an](const trace::TraceRecord& r) { an.on_trace(r); });
  sim::FunctionalSim fsim(prog);
  fsim.run(max_insns, [&tb](const sim::FunctionalSim::Step& s) {
    tb.on_instruction(s.pc, s.sig, s.index);
  });
  tb.flush();
  std::printf("dynamic instructions : %llu\n",
              static_cast<unsigned long long>(an.total_dynamic_instructions()));
  std::printf("dynamic traces       : %llu\n",
              static_cast<unsigned long long>(an.total_dynamic_traces()));
  std::printf("static traces        : %llu\n",
              static_cast<unsigned long long>(an.num_static_traces()));
  std::printf("traces for 90%% cover : %llu\n",
              static_cast<unsigned long long>(an.traces_for_share(0.9)));
  for (const std::uint64_t d : {500ULL, 1000ULL, 2000ULL, 5000ULL, 10000ULL}) {
    std::printf("repeats within %-5llu : %.1f%%\n", static_cast<unsigned long long>(d),
                100.0 * an.share_repeating_within(d));
  }
  return 0;
}

int run_campaign(const isa::Program& prog, std::uint64_t faults,
                 std::uint64_t window, std::uint64_t seed, unsigned threads,
                 fi::CheckpointMode mode, std::uint64_t ladder_interval,
                 fi::PruneConfig prune, fi::ExecMode exec,
                 std::uint64_t batch_width) {
  fi::CampaignConfig cfg;
  cfg.observation_cycles = window;
  cfg.seed = seed;
  cfg.checkpoint_mode = mode;
  cfg.ladder_interval = ladder_interval;
  cfg.prune = prune;
  cfg.exec = exec;
  cfg.batch_width = batch_width;
  fi::FaultInjectionCampaign camp(prog, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto summary = camp.run(faults, threads);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("checkpoint mode      : %s\n", fi::checkpoint_mode_name(mode));
  std::printf("prune                : %s\n", fi::prune_mode_name(prune.mode));
  std::printf("exec                 : %s\n", fi::exec_mode_name(exec));
  std::printf("faults injected      : %llu\n",
              static_cast<unsigned long long>(summary.total));
  for (std::size_t i = 0; i < fi::kNumOutcomes; ++i) {
    const auto o = static_cast<fi::Outcome>(i);
    std::printf("%-20s : %llu (%.1f%%)\n", fi::outcome_label(o),
                static_cast<unsigned long long>(summary.counts[i]),
                summary.percent(o));
  }
  std::printf("ITR-detected         : %.1f%%\n", summary.itr_detected_percent());
  if (elapsed_s > 0.0) {
    std::printf("throughput           : %.0f injections/s (%.3f s)\n",
                static_cast<double>(summary.total) / elapsed_s, elapsed_s);
  }
  return 0;
}

// Shared flag plumbing for the three --campaign-* service modes.  These
// modes manage the stats registry per shard themselves, so they bypass
// ObsGuard; --stats-json is the merge mode's own output flag.
int run_service(const util::CliFlags& flags, bool do_shard, bool do_serve) {
  const std::string shard_dir = flags.get_string("shard-dir", "");
  if (shard_dir.empty()) {
    std::fprintf(stderr, "itr_sim: --campaign-%s requires --shard-dir DIR\n",
                 do_shard ? "shard" : do_serve ? "serve" : "merge");
    return 2;
  }
  // The trace stream cache is irrelevant to fig08-style campaigns today, but
  // fleet drivers pass one cache root to every worker invocation; accept and
  // apply it so mixed fleets need no per-binary argv edits.
  const std::string cache_dir = flags.get_string("stream-cache", "");
  if (cache_dir == "off" || cache_dir == "none") {
    workload::set_stream_cache_dir("");
  } else if (!cache_dir.empty()) {
    workload::set_stream_cache_dir(cache_dir);
  }

  if (do_shard) {
    fi::service::CampaignSpec spec;
    const std::string benchmarks = flags.get_string("benchmarks", "");
    std::stringstream ss(benchmarks);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) spec.benchmarks.push_back(item);
    }
    if (spec.benchmarks.empty()) {
      std::fprintf(stderr, "itr_sim: --campaign-shard requires --benchmarks a,b\n");
      return 2;
    }
    spec.insns = flags.get_u64("insns", 2'000'000);
    spec.faults = flags.get_u64("campaign", 100);
    spec.window = flags.get_u64("window", 100'000);
    spec.seed = flags.get_u64("seed", 1);
    spec.mode = fi::parse_checkpoint_mode(flags.get_string("ckpt-mode", "ladder"));
    spec.ladder_interval = flags.get_u64("ckpt-interval", 0);
    spec.prune.mode = fi::parse_prune_mode(flags.get_string("prune", "off"));
    spec.prune.check_interval = flags.get_u64("prune-interval", 0);
    spec.exec = fi::parse_exec_mode(flags.get_string("exec", "seq"));
    spec.batch_width = flags.get_u64("batch-width", 16);
    const auto index_splits =
        static_cast<std::uint32_t>(flags.get_u64("shard-count", 4));
    const auto bit_splits =
        static_cast<std::uint32_t>(flags.get_u64("bit-splits", 1));
    flags.reject_unknown();
    fi::service::shard_campaign(shard_dir, spec, index_splits, bit_splits);
    std::printf("sharded %zu benchmarks into %u x %u shards in %s\n",
                spec.benchmarks.size(), index_splits, bit_splits,
                shard_dir.c_str());
    return 0;
  }

  if (do_serve) {
    fi::service::ServeOptions opts;
    opts.threads = util::resolve_threads(flags.get_u64("threads", 0));
    opts.lease_seconds = flags.get_u64("lease-seconds", 600);
    opts.max_shards = flags.get_u64("max-shards", 0);
    opts.source = [](const std::string& name, std::uint64_t insns) {
      return workload::generate_spec(name, insns);
    };
    flags.reject_unknown();
    const auto rep = fi::service::serve(shard_dir, opts);
    std::printf("served %s: %llu completed, %llu reclaimed, %llu discarded, "
                "%llu busy elsewhere, %llu/%llu done\n",
                shard_dir.c_str(),
                static_cast<unsigned long long>(rep.completed),
                static_cast<unsigned long long>(rep.reclaimed),
                static_cast<unsigned long long>(rep.discarded),
                static_cast<unsigned long long>(rep.busy),
                static_cast<unsigned long long>(rep.done),
                static_cast<unsigned long long>(
                    fi::service::load_manifest(shard_dir).shards.size()));
    return 0;
  }

  // --campaign-merge
  const std::string csv_out = flags.get_string("csv-out", "");
  const std::string stats_out = flags.get_string("stats-json", "");
  const bool csv = flags.get_bool("csv", true);  // default CSV (merge output)
  flags.reject_unknown();
  const auto merged = fi::service::merge_campaign(shard_dir);
  if (!csv_out.empty()) {
    std::ostringstream os;
    merged.table.print_csv(os);
    util::atomic_write_file_or_throw(csv_out, os.str());
  } else {
    std::ostringstream os;
    if (csv) {
      merged.table.print_csv(os);
    } else {
      merged.table.print(os);
    }
    std::fputs(os.str().c_str(), stdout);
  }
  if (!stats_out.empty()) {
    util::atomic_write_file_or_throw(stats_out, merged.stats_json);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::CliFlags flags(argc, argv);
    const bool svc_shard = flags.get_bool("campaign-shard");
    const bool svc_serve = flags.get_bool("campaign-serve");
    const bool svc_merge = flags.get_bool("campaign-merge");
    if (static_cast<int>(svc_shard) + static_cast<int>(svc_serve) +
            static_cast<int>(svc_merge) >
        1) {
      std::fprintf(stderr,
                   "itr_sim: pick one of --campaign-shard / --campaign-serve "
                   "/ --campaign-merge\n");
      return 2;
    }
    if (svc_shard || svc_serve || svc_merge) {
      return run_service(flags, svc_shard, svc_serve);
    }
    const std::string asm_path = flags.get_string("asm", "");
    const std::string benchmark = flags.get_string("benchmark", "");
    const auto max_insns = flags.get_u64("insns", 100'000'000);
    const bool functional = flags.get_bool("functional");
    const bool disasm = flags.get_bool("disasm");
    const bool no_itr = flags.get_bool("no-itr");
    const bool recovery = flags.get_bool("recovery");
    const bool do_characterize = flags.get_bool("characterize");
    const bool has_fault = flags.has("fault-index");
    const auto fault_index = flags.get_u64("fault-index", 0);
    const auto fault_bit = static_cast<unsigned>(flags.get_u64("fault-bit", 0));
    const auto campaign_faults = flags.get_u64("campaign", 0);
    const auto window = flags.get_u64("window", 100'000);
    const auto seed = flags.get_u64("seed", 1);
    const auto ckpt_mode =
        fi::parse_checkpoint_mode(flags.get_string("ckpt-mode", "ladder"));
    const auto ckpt_interval = flags.get_u64("ckpt-interval", 0);  // 0 = auto
    fi::PruneConfig prune;
    prune.mode = fi::parse_prune_mode(flags.get_string("prune", "off"));
    prune.check_interval = flags.get_u64("prune-interval", 0);  // 0 = default
    const auto exec = fi::parse_exec_mode(flags.get_string("exec", "seq"));
    const auto batch_width = flags.get_u64("batch-width", 16);
    const auto threads = util::resolve_threads(flags.get_u64("threads", 0));
    util::ObsGuard obs_guard(flags);
    flags.reject_unknown();

    isa::Program prog;
    if (!asm_path.empty()) {
      prog = isa::assemble(read_file(asm_path), asm_path);
    } else if (!benchmark.empty()) {
      prog = workload::generate_spec(benchmark, max_insns);
    } else {
      std::fprintf(stderr, "usage: itr_sim --asm FILE | --benchmark NAME [options]\n");
      return 2;
    }

    if (disasm) {
      for (std::size_t i = 0; i < prog.code.size(); ++i) {
        const std::uint64_t pc = prog.code_base + i * isa::kInstrBytes;
        std::printf("%08llx:  %s\n", static_cast<unsigned long long>(pc),
                    isa::disassemble_raw(prog.code[i], pc).c_str());
      }
      return 0;
    }
    if (do_characterize) return characterize(prog, max_insns);
    if (campaign_faults > 0) {
      return run_campaign(prog, campaign_faults, window, seed, threads, ckpt_mode,
                          ckpt_interval, prune, exec, batch_width);
    }
    if (functional) return run_functional(prog, max_insns);

    sim::CycleSim::Options opt;
    if (!no_itr) opt.itr = core::ItrCacheConfig{};
    opt.itr_recovery = recovery;
    if (has_fault) {
      opt.fault.enabled = true;
      opt.fault.target_decode_index = fault_index;
      opt.fault.bit = fault_bit;
    }
    sim::CycleSim cpu(prog, std::move(opt));
    cpu.run(max_insns);

    // A single deterministic run: its machine activity is architectural.
    sim::publish_pipeline_stats(cpu.stats(), obs::MetricClass::kArchitectural);
    if (cpu.itr_unit() != nullptr) {
      core::publish_itr_cache_stats(cpu.itr_unit()->cache(),
                                    obs::MetricClass::kArchitectural);
    }

    std::fputs(cpu.output().c_str(), stdout);
    if (!cpu.output().empty()) std::fputc('\n', stdout);

    const auto& s = cpu.stats();
    std::fprintf(stderr,
                 "[itr_sim] %s | %llu insns, %llu cycles (IPC %.2f), "
                 "%llu mispredicts, %llu I$ miss, %llu D$ miss\n",
                 termination_name(cpu.termination()),
                 static_cast<unsigned long long>(s.instructions_committed),
                 static_cast<unsigned long long>(s.cycles), s.ipc(),
                 static_cast<unsigned long long>(s.branch_mispredicts),
                 static_cast<unsigned long long>(s.icache_misses),
                 static_cast<unsigned long long>(s.dcache_misses));
    if (cpu.itr_unit() != nullptr) {
      const auto& u = cpu.itr_unit()->stats();
      const auto& c = cpu.itr_unit()->cache().counters();
      std::fprintf(stderr,
                   "[itr_sim] ITR: %llu traces, %llu hits / %llu misses, "
                   "%llu mismatches, %llu retries, %llu recoveries\n",
                   static_cast<unsigned long long>(u.traces_dispatched),
                   static_cast<unsigned long long>(c.hits),
                   static_cast<unsigned long long>(c.misses),
                   static_cast<unsigned long long>(u.signature_mismatches),
                   static_cast<unsigned long long>(u.retries),
                   static_cast<unsigned long long>(u.recoveries));
    }
    return cpu.termination() == sim::RunTermination::kExited ? cpu.exit_status() : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "itr_sim: %s\n", e.what());
    return 2;
  }
}
