// Differential fuzzing harness for the simulator equivalence pairs.
//
// Modes:
//   itr_fuzz --seeds N [--seed-base B] [--oracle NAME] [--corpus DIR]
//            [--budget INSNS] [--no-minimize] [--verbose]
//       Run a deterministic fuzz session.  Exit 0 when every seed agrees on
//       every oracle pair, 1 when any divergence was found.
//   itr_fuzz --replay FILE [--oracle NAME]
//       Re-run one reproducer (.itrasm) through the oracle pairs.
//   itr_fuzz --list-oracles
//       Print the oracle pair names, one per line.
//   itr_fuzz --dump-seed N
//       Print the generated program for seed N as .itrasm text (for seeding
//       the corpus and for triage).
//
// Usage errors (unknown flags, malformed numbers) exit with status 2.
#include <cstdio>
#include <iostream>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/program_gen.hpp"
#include "util/cli.hpp"

namespace {

int replay_file(const std::string& path, const std::string& only_oracle,
                const itr::fuzz::OracleConfig& cfg) {
  const itr::isa::Program prog = itr::fuzz::load_itrasm_file(path);
  bool diverged = false;
  for (const auto& oracle : itr::fuzz::oracle_names()) {
    if (!only_oracle.empty() && oracle != only_oracle) continue;
    if (auto d = itr::fuzz::run_oracle(oracle, prog, cfg)) {
      std::cout << path << ": DIVERGENCE oracle=" << oracle << ": " << d->detail
                << "\n";
      diverged = true;
    } else {
      std::cout << path << ": " << oracle << " ok\n";
    }
  }
  return diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) try {
  itr::util::CliFlags flags(argc, argv);

  itr::fuzz::FuzzOptions options;
  options.num_seeds = flags.get_u64("seeds", 200);
  options.seed_base = flags.get_u64("seed-base", 1);
  options.oracle.max_instructions = flags.get_u64("budget", 20'000);
  options.only_oracle = flags.get_string("oracle", "");
  options.minimize = !flags.get_bool("no-minimize");
  options.corpus_dir = flags.get_string("corpus", "");
  options.verbose = flags.get_bool("verbose");
  const bool list_oracles = flags.get_bool("list-oracles");
  const std::string replay = flags.get_string("replay", "");
  const bool dump = flags.has("dump-seed");
  const std::uint64_t dump_seed = flags.get_u64("dump-seed", 0);
  flags.reject_unknown();

  if (list_oracles) {
    for (const auto& name : itr::fuzz::oracle_names()) std::cout << name << "\n";
    return 0;
  }
  if (dump) {
    const itr::isa::Program prog = itr::fuzz::generate_program(dump_seed).materialize();
    std::cout << itr::fuzz::to_itrasm(
        prog, {"generated program, seed " + std::to_string(dump_seed)});
    return 0;
  }
  if (!replay.empty()) return replay_file(replay, options.only_oracle, options.oracle);

  const itr::fuzz::FuzzReport report = itr::fuzz::run_fuzz(options, std::cout);
  return report.clean() ? 0 : 1;
} catch (const itr::util::CliError& e) {
  std::fprintf(stderr, "itr_fuzz: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "itr_fuzz: %s\n", e.what());
  return 2;
}
