
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_workload.cpp" "examples/CMakeFiles/custom_workload.dir/custom_workload.cpp.o" "gcc" "examples/CMakeFiles/custom_workload.dir/custom_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fi/CMakeFiles/itr_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/itr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/itr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/itr/CMakeFiles/itr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/itr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/itr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/itr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/itr_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
