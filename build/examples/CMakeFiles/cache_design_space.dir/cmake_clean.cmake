file(REMOVE_RECURSE
  "CMakeFiles/cache_design_space.dir/cache_design_space.cpp.o"
  "CMakeFiles/cache_design_space.dir/cache_design_space.cpp.o.d"
  "cache_design_space"
  "cache_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
