# Empty dependencies file for cache_design_space.
# This may be replaced when dependencies are built.
