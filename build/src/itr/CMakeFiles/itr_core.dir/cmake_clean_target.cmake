file(REMOVE_RECURSE
  "libitr_core.a"
)
