
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itr/coverage.cpp" "src/itr/CMakeFiles/itr_core.dir/coverage.cpp.o" "gcc" "src/itr/CMakeFiles/itr_core.dir/coverage.cpp.o.d"
  "/root/repo/src/itr/itr_cache.cpp" "src/itr/CMakeFiles/itr_core.dir/itr_cache.cpp.o" "gcc" "src/itr/CMakeFiles/itr_core.dir/itr_cache.cpp.o.d"
  "/root/repo/src/itr/itr_unit.cpp" "src/itr/CMakeFiles/itr_core.dir/itr_unit.cpp.o" "gcc" "src/itr/CMakeFiles/itr_core.dir/itr_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/itr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/itr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/itr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
