# Empty dependencies file for itr_core.
# This may be replaced when dependencies are built.
