file(REMOVE_RECURSE
  "CMakeFiles/itr_core.dir/coverage.cpp.o"
  "CMakeFiles/itr_core.dir/coverage.cpp.o.d"
  "CMakeFiles/itr_core.dir/itr_cache.cpp.o"
  "CMakeFiles/itr_core.dir/itr_cache.cpp.o.d"
  "CMakeFiles/itr_core.dir/itr_unit.cpp.o"
  "CMakeFiles/itr_core.dir/itr_unit.cpp.o.d"
  "libitr_core.a"
  "libitr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
