# Empty compiler generated dependencies file for itr_trace.
# This may be replaced when dependencies are built.
