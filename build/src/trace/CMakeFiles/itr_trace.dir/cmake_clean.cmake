file(REMOVE_RECURSE
  "CMakeFiles/itr_trace.dir/analysis.cpp.o"
  "CMakeFiles/itr_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/itr_trace.dir/trace_builder.cpp.o"
  "CMakeFiles/itr_trace.dir/trace_builder.cpp.o.d"
  "libitr_trace.a"
  "libitr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
