file(REMOVE_RECURSE
  "libitr_trace.a"
)
