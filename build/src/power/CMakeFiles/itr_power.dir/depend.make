# Empty dependencies file for itr_power.
# This may be replaced when dependencies are built.
