file(REMOVE_RECURSE
  "libitr_power.a"
)
