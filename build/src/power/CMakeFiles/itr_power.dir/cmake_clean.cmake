file(REMOVE_RECURSE
  "CMakeFiles/itr_power.dir/cacti.cpp.o"
  "CMakeFiles/itr_power.dir/cacti.cpp.o.d"
  "libitr_power.a"
  "libitr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
