file(REMOVE_RECURSE
  "libitr_util.a"
)
