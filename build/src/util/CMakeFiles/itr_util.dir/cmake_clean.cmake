file(REMOVE_RECURSE
  "CMakeFiles/itr_util.dir/cli.cpp.o"
  "CMakeFiles/itr_util.dir/cli.cpp.o.d"
  "CMakeFiles/itr_util.dir/stats.cpp.o"
  "CMakeFiles/itr_util.dir/stats.cpp.o.d"
  "CMakeFiles/itr_util.dir/table.cpp.o"
  "CMakeFiles/itr_util.dir/table.cpp.o.d"
  "libitr_util.a"
  "libitr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
