# Empty dependencies file for itr_util.
# This may be replaced when dependencies are built.
