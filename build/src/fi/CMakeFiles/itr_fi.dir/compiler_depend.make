# Empty compiler generated dependencies file for itr_fi.
# This may be replaced when dependencies are built.
