file(REMOVE_RECURSE
  "CMakeFiles/itr_fi.dir/classify.cpp.o"
  "CMakeFiles/itr_fi.dir/classify.cpp.o.d"
  "libitr_fi.a"
  "libitr_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
