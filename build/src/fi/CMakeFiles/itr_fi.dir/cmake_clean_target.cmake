file(REMOVE_RECURSE
  "libitr_fi.a"
)
