file(REMOVE_RECURSE
  "CMakeFiles/itr_workload.dir/generator.cpp.o"
  "CMakeFiles/itr_workload.dir/generator.cpp.o.d"
  "CMakeFiles/itr_workload.dir/mini_programs.cpp.o"
  "CMakeFiles/itr_workload.dir/mini_programs.cpp.o.d"
  "CMakeFiles/itr_workload.dir/spec_profiles.cpp.o"
  "CMakeFiles/itr_workload.dir/spec_profiles.cpp.o.d"
  "libitr_workload.a"
  "libitr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
