# Empty dependencies file for itr_workload.
# This may be replaced when dependencies are built.
