file(REMOVE_RECURSE
  "libitr_workload.a"
)
