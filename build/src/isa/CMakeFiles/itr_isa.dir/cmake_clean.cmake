file(REMOVE_RECURSE
  "CMakeFiles/itr_isa.dir/assembler.cpp.o"
  "CMakeFiles/itr_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/itr_isa.dir/builder.cpp.o"
  "CMakeFiles/itr_isa.dir/builder.cpp.o.d"
  "CMakeFiles/itr_isa.dir/decode.cpp.o"
  "CMakeFiles/itr_isa.dir/decode.cpp.o.d"
  "CMakeFiles/itr_isa.dir/disasm.cpp.o"
  "CMakeFiles/itr_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/itr_isa.dir/encoding.cpp.o"
  "CMakeFiles/itr_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/itr_isa.dir/opcode.cpp.o"
  "CMakeFiles/itr_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/itr_isa.dir/program.cpp.o"
  "CMakeFiles/itr_isa.dir/program.cpp.o.d"
  "libitr_isa.a"
  "libitr_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
