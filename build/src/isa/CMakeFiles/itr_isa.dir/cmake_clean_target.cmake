file(REMOVE_RECURSE
  "libitr_isa.a"
)
