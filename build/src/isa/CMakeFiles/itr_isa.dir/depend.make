# Empty dependencies file for itr_isa.
# This may be replaced when dependencies are built.
