file(REMOVE_RECURSE
  "CMakeFiles/itr_sim.dir/branch_pred.cpp.o"
  "CMakeFiles/itr_sim.dir/branch_pred.cpp.o.d"
  "CMakeFiles/itr_sim.dir/exec.cpp.o"
  "CMakeFiles/itr_sim.dir/exec.cpp.o.d"
  "CMakeFiles/itr_sim.dir/functional.cpp.o"
  "CMakeFiles/itr_sim.dir/functional.cpp.o.d"
  "CMakeFiles/itr_sim.dir/memory.cpp.o"
  "CMakeFiles/itr_sim.dir/memory.cpp.o.d"
  "CMakeFiles/itr_sim.dir/pipeline.cpp.o"
  "CMakeFiles/itr_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/itr_sim.dir/rename.cpp.o"
  "CMakeFiles/itr_sim.dir/rename.cpp.o.d"
  "libitr_sim.a"
  "libitr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
