# Empty dependencies file for itr_sim.
# This may be replaced when dependencies are built.
