file(REMOVE_RECURSE
  "libitr_sim.a"
)
