
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch_pred.cpp" "src/sim/CMakeFiles/itr_sim.dir/branch_pred.cpp.o" "gcc" "src/sim/CMakeFiles/itr_sim.dir/branch_pred.cpp.o.d"
  "/root/repo/src/sim/exec.cpp" "src/sim/CMakeFiles/itr_sim.dir/exec.cpp.o" "gcc" "src/sim/CMakeFiles/itr_sim.dir/exec.cpp.o.d"
  "/root/repo/src/sim/functional.cpp" "src/sim/CMakeFiles/itr_sim.dir/functional.cpp.o" "gcc" "src/sim/CMakeFiles/itr_sim.dir/functional.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/itr_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/itr_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/sim/CMakeFiles/itr_sim.dir/pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/itr_sim.dir/pipeline.cpp.o.d"
  "/root/repo/src/sim/rename.cpp" "src/sim/CMakeFiles/itr_sim.dir/rename.cpp.o" "gcc" "src/sim/CMakeFiles/itr_sim.dir/rename.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/itr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/itr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/itr/CMakeFiles/itr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/itr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
