# Empty dependencies file for itrsim_tool.
# This may be replaced when dependencies are built.
