file(REMOVE_RECURSE
  "CMakeFiles/itrsim_tool.dir/itr_sim.cpp.o"
  "CMakeFiles/itrsim_tool.dir/itr_sim.cpp.o.d"
  "itr_sim"
  "itr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itrsim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
