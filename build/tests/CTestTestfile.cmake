# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_itr[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_fi[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_exec_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_rename[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_asm_programs[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
