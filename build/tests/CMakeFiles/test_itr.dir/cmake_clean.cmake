file(REMOVE_RECURSE
  "CMakeFiles/test_itr.dir/itr_test.cpp.o"
  "CMakeFiles/test_itr.dir/itr_test.cpp.o.d"
  "test_itr"
  "test_itr.pdb"
  "test_itr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_itr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
