# Empty compiler generated dependencies file for test_itr.
# This may be replaced when dependencies are built.
