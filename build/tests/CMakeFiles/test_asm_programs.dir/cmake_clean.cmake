file(REMOVE_RECURSE
  "CMakeFiles/test_asm_programs.dir/asm_programs_test.cpp.o"
  "CMakeFiles/test_asm_programs.dir/asm_programs_test.cpp.o.d"
  "test_asm_programs"
  "test_asm_programs.pdb"
  "test_asm_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
