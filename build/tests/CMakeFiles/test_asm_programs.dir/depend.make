# Empty dependencies file for test_asm_programs.
# This may be replaced when dependencies are built.
