# Empty dependencies file for test_exec_coverage.
# This may be replaced when dependencies are built.
