file(REMOVE_RECURSE
  "CMakeFiles/test_exec_coverage.dir/exec_coverage_test.cpp.o"
  "CMakeFiles/test_exec_coverage.dir/exec_coverage_test.cpp.o.d"
  "test_exec_coverage"
  "test_exec_coverage.pdb"
  "test_exec_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
