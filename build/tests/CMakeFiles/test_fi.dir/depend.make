# Empty dependencies file for test_fi.
# This may be replaced when dependencies are built.
