file(REMOVE_RECURSE
  "CMakeFiles/test_fi.dir/fi_test.cpp.o"
  "CMakeFiles/test_fi.dir/fi_test.cpp.o.d"
  "test_fi"
  "test_fi.pdb"
  "test_fi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
