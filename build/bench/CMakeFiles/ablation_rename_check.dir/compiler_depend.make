# Empty compiler generated dependencies file for ablation_rename_check.
# This may be replaced when dependencies are built.
