file(REMOVE_RECURSE
  "CMakeFiles/ablation_rename_check.dir/ablation_rename_check.cpp.o"
  "CMakeFiles/ablation_rename_check.dir/ablation_rename_check.cpp.o.d"
  "ablation_rename_check"
  "ablation_rename_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rename_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
