# Empty dependencies file for fig03_proximity_int.
# This may be replaced when dependencies are built.
