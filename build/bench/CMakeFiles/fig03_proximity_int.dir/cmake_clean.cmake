file(REMOVE_RECURSE
  "CMakeFiles/fig03_proximity_int.dir/fig03_proximity_int.cpp.o"
  "CMakeFiles/fig03_proximity_int.dir/fig03_proximity_int.cpp.o.d"
  "fig03_proximity_int"
  "fig03_proximity_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_proximity_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
