file(REMOVE_RECURSE
  "CMakeFiles/ablation_perf_overhead.dir/ablation_perf_overhead.cpp.o"
  "CMakeFiles/ablation_perf_overhead.dir/ablation_perf_overhead.cpp.o.d"
  "ablation_perf_overhead"
  "ablation_perf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_perf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
