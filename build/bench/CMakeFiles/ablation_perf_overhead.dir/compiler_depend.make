# Empty compiler generated dependencies file for ablation_perf_overhead.
# This may be replaced when dependencies are built.
