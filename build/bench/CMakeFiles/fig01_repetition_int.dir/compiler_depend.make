# Empty compiler generated dependencies file for fig01_repetition_int.
# This may be replaced when dependencies are built.
