file(REMOVE_RECURSE
  "CMakeFiles/fig01_repetition_int.dir/fig01_repetition_int.cpp.o"
  "CMakeFiles/fig01_repetition_int.dir/fig01_repetition_int.cpp.o.d"
  "fig01_repetition_int"
  "fig01_repetition_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_repetition_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
