file(REMOVE_RECURSE
  "CMakeFiles/ablation_checked_lru.dir/ablation_checked_lru.cpp.o"
  "CMakeFiles/ablation_checked_lru.dir/ablation_checked_lru.cpp.o.d"
  "ablation_checked_lru"
  "ablation_checked_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checked_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
