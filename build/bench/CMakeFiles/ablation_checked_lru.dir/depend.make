# Empty dependencies file for ablation_checked_lru.
# This may be replaced when dependencies are built.
