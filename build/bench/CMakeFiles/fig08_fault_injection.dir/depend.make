# Empty dependencies file for fig08_fault_injection.
# This may be replaced when dependencies are built.
