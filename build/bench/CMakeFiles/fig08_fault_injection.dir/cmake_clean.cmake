file(REMOVE_RECURSE
  "CMakeFiles/fig08_fault_injection.dir/fig08_fault_injection.cpp.o"
  "CMakeFiles/fig08_fault_injection.dir/fig08_fault_injection.cpp.o.d"
  "fig08_fault_injection"
  "fig08_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
