file(REMOVE_RECURSE
  "CMakeFiles/ablation_selective_redundancy.dir/ablation_selective_redundancy.cpp.o"
  "CMakeFiles/ablation_selective_redundancy.dir/ablation_selective_redundancy.cpp.o.d"
  "ablation_selective_redundancy"
  "ablation_selective_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
