# Empty dependencies file for ablation_selective_redundancy.
# This may be replaced when dependencies are built.
