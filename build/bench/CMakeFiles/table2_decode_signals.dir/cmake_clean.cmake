file(REMOVE_RECURSE
  "CMakeFiles/table2_decode_signals.dir/table2_decode_signals.cpp.o"
  "CMakeFiles/table2_decode_signals.dir/table2_decode_signals.cpp.o.d"
  "table2_decode_signals"
  "table2_decode_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_decode_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
