file(REMOVE_RECURSE
  "CMakeFiles/fig04_proximity_fp.dir/fig04_proximity_fp.cpp.o"
  "CMakeFiles/fig04_proximity_fp.dir/fig04_proximity_fp.cpp.o.d"
  "fig04_proximity_fp"
  "fig04_proximity_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_proximity_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
