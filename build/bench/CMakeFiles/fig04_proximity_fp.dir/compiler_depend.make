# Empty compiler generated dependencies file for fig04_proximity_fp.
# This may be replaced when dependencies are built.
