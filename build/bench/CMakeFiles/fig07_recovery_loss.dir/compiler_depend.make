# Empty compiler generated dependencies file for fig07_recovery_loss.
# This may be replaced when dependencies are built.
