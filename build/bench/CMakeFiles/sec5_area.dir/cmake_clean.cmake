file(REMOVE_RECURSE
  "CMakeFiles/sec5_area.dir/sec5_area.cpp.o"
  "CMakeFiles/sec5_area.dir/sec5_area.cpp.o.d"
  "sec5_area"
  "sec5_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
