# Empty compiler generated dependencies file for sec5_area.
# This may be replaced when dependencies are built.
