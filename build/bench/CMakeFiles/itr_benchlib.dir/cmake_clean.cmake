file(REMOVE_RECURSE
  "CMakeFiles/itr_benchlib.dir/figlib.cpp.o"
  "CMakeFiles/itr_benchlib.dir/figlib.cpp.o.d"
  "libitr_benchlib.a"
  "libitr_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itr_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
