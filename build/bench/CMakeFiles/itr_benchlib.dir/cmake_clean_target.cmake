file(REMOVE_RECURSE
  "libitr_benchlib.a"
)
