# Empty dependencies file for itr_benchlib.
# This may be replaced when dependencies are built.
