# Empty dependencies file for fig06_detection_loss.
# This may be replaced when dependencies are built.
