file(REMOVE_RECURSE
  "CMakeFiles/fig06_detection_loss.dir/fig06_detection_loss.cpp.o"
  "CMakeFiles/fig06_detection_loss.dir/fig06_detection_loss.cpp.o.d"
  "fig06_detection_loss"
  "fig06_detection_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_detection_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
