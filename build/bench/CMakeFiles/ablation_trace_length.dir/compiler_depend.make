# Empty compiler generated dependencies file for ablation_trace_length.
# This may be replaced when dependencies are built.
