file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace_length.dir/ablation_trace_length.cpp.o"
  "CMakeFiles/ablation_trace_length.dir/ablation_trace_length.cpp.o.d"
  "ablation_trace_length"
  "ablation_trace_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
