file(REMOVE_RECURSE
  "CMakeFiles/fig02_repetition_fp.dir/fig02_repetition_fp.cpp.o"
  "CMakeFiles/fig02_repetition_fp.dir/fig02_repetition_fp.cpp.o.d"
  "fig02_repetition_fp"
  "fig02_repetition_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_repetition_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
