# Empty compiler generated dependencies file for fig02_repetition_fp.
# This may be replaced when dependencies are built.
