// minibench implementation: adaptive-iteration runner, console table and
// google-benchmark-compatible JSON writer.  Linux-only (CLOCK_* timers),
// which is all this repository targets.
#include "benchmark/benchmark.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <memory>
#include <regex>
#include <stdexcept>
#include <thread>

namespace benchmark {
namespace {

// ---------------------------------------------------------------------------
// Clocks

std::uint64_t now_ns(clockid_t clock) {
  timespec ts{};
  clock_gettime(clock, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t real_now_ns() { return now_ns(CLOCK_MONOTONIC); }

std::uint64_t cpu_now_ns(bool process_wide) {
  return now_ns(process_wide ? CLOCK_PROCESS_CPUTIME_ID
                             : CLOCK_THREAD_CPUTIME_ID);
}

// ---------------------------------------------------------------------------
// Global run configuration (set by Initialize)

struct RunConfig {
  std::string out_path;
  std::string out_format = "json";  ///< google-benchmark's default for --benchmark_out
  std::string filter;
  double min_time_s = 0.5;
  std::uint64_t fixed_iterations = 0;  ///< nonzero: "--benchmark_min_time=Nx"
  bool list_tests = false;
  std::string executable = "perf_micro";
};

RunConfig& config() {
  static RunConfig cfg;
  return cfg;
}

std::vector<std::pair<std::string, std::string>>& custom_context() {
  static std::vector<std::pair<std::string, std::string>> ctx;
  return ctx;
}

std::vector<std::unique_ptr<internal::Benchmark>>& registry() {
  static std::vector<std::unique_ptr<internal::Benchmark>> benches;
  return benches;
}

const char* unit_name(TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return "ns";
    case kMicrosecond: return "us";
    case kMillisecond: return "ms";
    case kSecond: return "s";
  }
  return "ns";
}

double ns_to_unit(double ns, TimeUnit unit) {
  switch (unit) {
    case kNanosecond: return ns;
    case kMicrosecond: return ns / 1e3;
    case kMillisecond: return ns / 1e6;
    case kSecond: return ns / 1e9;
  }
  return ns;
}

// "0.5", "0.5s" (seconds) or "3x" (exact iteration count), as
// google-benchmark 1.7+ spells --benchmark_min_time.
void parse_min_time(const std::string& value) {
  if (value.empty()) return;
  std::string body = value;
  const char tail = body.back();
  bool fixed = false;
  if (tail == 's' || tail == 'x') {
    fixed = (tail == 'x');
    body.pop_back();
  }
  try {
    const double v = std::stod(body);
    if (fixed) {
      config().fixed_iterations =
          v > 0 ? static_cast<std::uint64_t>(v) : 1;
    } else if (v > 0) {
      config().min_time_s = v;
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "minibench: ignoring bad --benchmark_min_time=%s\n",
                 value.c_str());
  }
}

// ---------------------------------------------------------------------------
// Results

struct RunResult {
  std::string name;
  std::uint64_t iterations = 0;
  double real_time = 0.0;  ///< per iteration, in `unit`
  double cpu_time = 0.0;   ///< per iteration, in `unit`
  TimeUnit unit = kNanosecond;
  std::string label;
  bool has_items = false;
  double items_per_second = 0.0;
  std::vector<std::pair<std::string, double>> counters;
};

}  // namespace

namespace internal {

Benchmark::Benchmark(std::string name, BenchFunction fn)
    : name_(std::move(name)), fn_(std::move(fn)) {}

Benchmark* Benchmark::Arg(std::int64_t x) {
  args_.push_back({x});
  return this;
}

Benchmark* Benchmark::Args(const std::vector<std::int64_t>& xs) {
  args_.push_back(xs);
  return this;
}

Benchmark* Benchmark::Unit(TimeUnit unit) {
  unit_ = unit;
  return this;
}

Benchmark* Benchmark::UseRealTime() {
  use_real_time_ = true;
  return this;
}

Benchmark* Benchmark::MeasureProcessCPUTime() {
  process_cpu_time_ = true;
  return this;
}

struct Runner {
  /// The registered arg sets, or a single empty set for a plain
  /// BENCHMARK(fn) with no Arg/Args calls.
  static std::vector<std::vector<std::int64_t>> arg_sets_of(
      const Benchmark& bench) {
    if (bench.args_.empty()) return {{}};
    return bench.args_;
  }

  static std::string run_name(const Benchmark& bench,
                              const std::vector<std::int64_t>& args) {
    std::string name = bench.name_;
    for (const std::int64_t a : args) name += "/" + std::to_string(a);
    if (bench.process_cpu_time_) name += "/process_time";
    if (bench.use_real_time_) name += "/real_time";
    return name;
  }

  static RunResult run_instance(const Benchmark& bench,
                                const std::vector<std::int64_t>& args) {
    const RunConfig& cfg = config();
    std::uint64_t iters =
        cfg.fixed_iterations != 0 ? cfg.fixed_iterations : 1;
    for (;;) {
      State state(iters, args, bench.process_cpu_time_);
      bench.fn_(state);
      if (!state.finished_) state.finish();

      const double real_s = static_cast<double>(state.real_ns_) / 1e9;
      const double cpu_s = static_cast<double>(state.cpu_ns_) / 1e9;
      const double elapsed = bench.use_real_time_ ? real_s : cpu_s;
      const bool enough = cfg.fixed_iterations != 0 ||
                          elapsed >= cfg.min_time_s ||
                          iters >= (1ull << 30);
      if (!enough) {
        // Same growth policy as google-benchmark: overshoot the target a
        // little (x1.4) and clamp the per-round multiplier to [2, 10].
        double mult = cfg.min_time_s * 1.4 / std::max(elapsed, 1e-9);
        mult = std::min(10.0, std::max(2.0, mult));
        iters = static_cast<std::uint64_t>(
                    static_cast<double>(iters) * mult) + 1;
        continue;
      }

      RunResult res;
      res.name = run_name(bench, args);
      res.iterations = iters;
      res.unit = bench.unit_;
      const double it = static_cast<double>(iters);
      res.real_time =
          ns_to_unit(static_cast<double>(state.real_ns_) / it, bench.unit_);
      res.cpu_time =
          ns_to_unit(static_cast<double>(state.cpu_ns_) / it, bench.unit_);
      res.label = state.label_;
      // Rates divide by real time under UseRealTime, CPU time otherwise
      // (documented divergence: google always uses CPU time for these).
      const double rate_denom_s =
          std::max(bench.use_real_time_ ? real_s : cpu_s, 1e-12);
      if (state.items_processed_ > 0) {
        res.has_items = true;
        res.items_per_second =
            static_cast<double>(state.items_processed_) / rate_denom_s;
      }
      for (const auto& [cname, counter] : state.counters) {
        const double v = (counter.flags & Counter::kIsRate)
                             ? counter.value / rate_denom_s
                             : counter.value;
        res.counters.emplace_back(cname, v);
      }
      return res;
    }
  }
};

}  // namespace internal

State::State(std::uint64_t max_iterations, std::vector<std::int64_t> args,
             bool process_cpu_time)
    : max_iterations_(max_iterations),
      args_(std::move(args)),
      process_cpu_time_(process_cpu_time) {}

State::StateIterator State::begin() {
  finished_ = false;
  cpu_start_ns_ = cpu_now_ns(process_cpu_time_);
  real_start_ns_ = real_now_ns();
  return StateIterator(this, max_iterations_);
}

void State::finish() {
  if (finished_) return;
  finished_ = true;
  real_ns_ = real_now_ns() - real_start_ns_;
  cpu_ns_ = cpu_now_ns(process_cpu_time_) - cpu_start_ns_;
}

std::int64_t State::range(std::size_t index) const {
  if (index >= args_.size()) {
    std::fprintf(stderr, "minibench: state.range(%zu) out of bounds (%zu args)\n",
                 index, args_.size());
    std::abort();
  }
  return args_[index];
}

internal::Benchmark* RegisterBenchmark(const std::string& name,
                                       internal::BenchFunction fn) {
  registry().push_back(
      std::make_unique<internal::Benchmark>(name, std::move(fn)));
  return registry().back().get();
}

void AddCustomContext(const std::string& key, const std::string& value) {
  custom_context().emplace_back(key, value);
}

void Initialize(int* argc, char** argv) {
  if (argc == nullptr || argv == nullptr) return;
  if (*argc > 0) config().executable = argv[0];
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (i == 0) {
      argv[out++] = argv[i];
    } else if (const char* v = value_of("--benchmark_out=")) {
      config().out_path = v;
    } else if (const char* v2 = value_of("--benchmark_out_format=")) {
      config().out_format = v2;
    } else if (const char* v3 = value_of("--benchmark_filter=")) {
      config().filter = v3;
    } else if (const char* v4 = value_of("--benchmark_min_time=")) {
      parse_min_time(v4);
    } else if (arg == "--benchmark_list_tests" ||
               arg == "--benchmark_list_tests=true") {
      config().list_tests = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: error: unrecognized command-line flag: %s\n",
                 argc > 0 ? argv[0] : "minibench", argv[i]);
  }
  return argc > 1;
}

namespace {

// ---------------------------------------------------------------------------
// Reporting

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  // Integral values print without a fraction, like google-benchmark.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string iso8601_now() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  localtime_r(&t, &tm);
  char buf[40];
  std::strftime(buf, sizeof(buf), "%FT%T%z", &tm);
  // %z prints "+0000"; the google-benchmark format is "+00:00".
  std::string s = buf;
  if (s.size() >= 5) s.insert(s.size() - 2, ":");
  return s;
}

std::string build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

void write_json(const std::vector<RunResult>& results) {
  const RunConfig& cfg = config();
  std::FILE* f = std::fopen(cfg.out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "minibench: cannot open %s for writing\n",
                 cfg.out_path.c_str());
    return;
  }
  char host[256] = "unknown";
  gethostname(host, sizeof(host) - 1);

  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"date\": \"%s\",\n", iso8601_now().c_str());
  std::fprintf(f, "    \"host_name\": \"%s\",\n", json_escape(host).c_str());
  std::fprintf(f, "    \"executable\": \"%s\",\n",
               json_escape(cfg.executable).c_str());
  std::fprintf(f, "    \"num_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"benchmark_library\": \"minibench\",\n");
  std::fprintf(f, "    \"library_build_type\": \"%s\"", build_type().c_str());
  for (const auto& [key, value] : custom_context()) {
    std::fprintf(f, ",\n    \"%s\": \"%s\"", json_escape(key).c_str(),
                 json_escape(value).c_str());
  }
  std::fprintf(f, "\n  },\n  \"benchmarks\": [\n");

  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", json_escape(r.name).c_str());
    std::fprintf(f, "      \"run_name\": \"%s\",\n",
                 json_escape(r.name).c_str());
    std::fprintf(f, "      \"run_type\": \"iteration\",\n");
    std::fprintf(f, "      \"repetitions\": 1,\n");
    std::fprintf(f, "      \"repetition_index\": 0,\n");
    std::fprintf(f, "      \"threads\": 1,\n");
    std::fprintf(f, "      \"iterations\": %llu,\n",
                 static_cast<unsigned long long>(r.iterations));
    std::fprintf(f, "      \"real_time\": %s,\n",
                 json_double(r.real_time).c_str());
    std::fprintf(f, "      \"cpu_time\": %s,\n",
                 json_double(r.cpu_time).c_str());
    if (r.has_items) {
      std::fprintf(f, "      \"items_per_second\": %s,\n",
                   json_double(r.items_per_second).c_str());
    }
    for (const auto& [cname, value] : r.counters) {
      std::fprintf(f, "      \"%s\": %s,\n", json_escape(cname).c_str(),
                   json_double(value).c_str());
    }
    if (!r.label.empty()) {
      std::fprintf(f, "      \"label\": \"%s\",\n",
                   json_escape(r.label).c_str());
    }
    std::fprintf(f, "      \"time_unit\": \"%s\"\n    }%s\n",
                 unit_name(r.unit), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

std::string format_value(double v) {
  char buf[64];
  const char* suffix = "";
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  std::snprintf(buf, sizeof(buf), "%.4g%s", v, suffix);
  return buf;
}

void print_console(const std::vector<RunResult>& results) {
  std::size_t width = std::string("Benchmark").size();
  for (const RunResult& r : results) width = std::max(width, r.name.size());

  std::string rule(width + 44, '-');
  std::printf("%s\n", rule.c_str());
  std::printf("%-*s %15s %15s %11s\n", static_cast<int>(width), "Benchmark",
              "Time", "CPU", "Iterations");
  std::printf("%s\n", rule.c_str());
  for (const RunResult& r : results) {
    char time_buf[64], cpu_buf[64];
    std::snprintf(time_buf, sizeof(time_buf), "%.3g %s", r.real_time,
                  unit_name(r.unit));
    std::snprintf(cpu_buf, sizeof(cpu_buf), "%.3g %s", r.cpu_time,
                  unit_name(r.unit));
    std::printf("%-*s %15s %15s %11llu", static_cast<int>(width),
                r.name.c_str(), time_buf, cpu_buf,
                static_cast<unsigned long long>(r.iterations));
    if (r.has_items) {
      std::printf(" items_per_second=%s/s",
                  format_value(r.items_per_second).c_str());
    }
    for (const auto& [cname, value] : r.counters) {
      std::printf(" %s=%s", cname.c_str(), format_value(value).c_str());
    }
    if (!r.label.empty()) std::printf(" %s", r.label.c_str());
    std::printf("\n");
  }
}

}  // namespace

std::size_t RunSpecifiedBenchmarks() {
  const RunConfig& cfg = config();
  std::regex filter;
  const bool has_filter = !cfg.filter.empty();
  if (has_filter) {
    try {
      filter = std::regex(cfg.filter);
    } catch (const std::regex_error&) {
      std::fprintf(stderr, "minibench: bad --benchmark_filter regex: %s\n",
                   cfg.filter.c_str());
      return 0;
    }
  }

  // Expand every (benchmark, arg-set) pair into a named run.
  std::vector<std::pair<const internal::Benchmark*,
                        std::vector<std::int64_t>>> runs;
  for (const auto& bench : registry()) {
    const auto& arg_sets = internal::Runner::arg_sets_of(*bench);
    for (const auto& args : arg_sets) {
      const std::string name = internal::Runner::run_name(*bench, args);
      if (has_filter && !std::regex_search(name, filter)) continue;
      runs.emplace_back(bench.get(), args);
    }
  }

  if (cfg.list_tests) {
    for (const auto& [bench, args] : runs) {
      std::printf("%s\n", internal::Runner::run_name(*bench, args).c_str());
    }
    return runs.size();
  }

  std::vector<RunResult> results;
  results.reserve(runs.size());
  for (const auto& [bench, args] : runs) {
    results.push_back(internal::Runner::run_instance(*bench, args));
  }

  print_console(results);
  if (!cfg.out_path.empty()) {
    if (cfg.out_format == "json" || cfg.out_format.empty()) {
      write_json(results);
    } else {
      std::fprintf(stderr,
                   "minibench: unsupported --benchmark_out_format=%s "
                   "(only json); skipping %s\n",
                   cfg.out_format.c_str(), cfg.out_path.c_str());
    }
  }
  return results.size();
}

void Shutdown() {}

}  // namespace benchmark
