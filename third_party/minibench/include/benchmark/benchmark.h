// minibench: a minimal reimplementation of the subset of the
// google-benchmark API used by this repository (see ../../README.md for
// scope and the deliberate divergences).  The header keeps source
// compatibility with <benchmark/benchmark.h> for that subset so
// perf_micro.cpp compiles unchanged against either library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

/// A user counter attached to a State; kIsRate counters are divided by
/// the measured time (real time under UseRealTime, CPU time otherwise)
/// before reporting.
class Counter {
 public:
  enum Flags : std::uint32_t {
    kDefaults = 0,
    kIsRate = 1u << 0,
  };

  double value;
  Flags flags;

  Counter(double v = 0.0, Flags f = kDefaults) : value(v), flags(f) {}
};

using UserCounters = std::map<std::string, Counter>;

class State;

namespace internal {

struct Runner;

using BenchFunction = std::function<void(State&)>;

/// One registered benchmark family plus its chained configuration.  The
/// chaining setters return `this` so registration reads exactly like
/// google-benchmark's.
class Benchmark {
 public:
  Benchmark(std::string name, BenchFunction fn);

  Benchmark* Arg(std::int64_t x);
  Benchmark* Args(const std::vector<std::int64_t>& xs);
  Benchmark* Unit(TimeUnit unit);
  Benchmark* UseRealTime();
  Benchmark* MeasureProcessCPUTime();

 private:
  friend struct Runner;

  std::string name_;
  BenchFunction fn_;
  std::vector<std::vector<std::int64_t>> args_;  ///< one run per entry
  TimeUnit unit_ = kNanosecond;
  bool use_real_time_ = false;
  bool process_cpu_time_ = false;
};

}  // namespace internal

/// Per-run benchmark state.  Timing starts when the range-for loop over
/// the state begins and stops when it ends, so setup code before the
/// loop is never measured.
class State {
 public:
  UserCounters counters;

  // The type itself is marked maybe_unused (as google-benchmark does):
  // the `auto _ : state` loop variable is never read, and without the
  // attribute every benchmark body trips -Wunused-but-set-variable.
  struct [[maybe_unused]] Value {};

  class StateIterator {
   public:
    Value operator*() const { return Value{}; }
    StateIterator& operator++() {
      --remaining_;
      return *this;
    }
    // Compared against end() once per iteration; when the budget is
    // exhausted the timers stop before the loop exits.
    bool operator!=(const StateIterator&) {
      if (remaining_ != 0) return true;
      parent_->finish();
      return false;
    }

   private:
    friend class State;
    StateIterator(State* parent, std::uint64_t n)
        : parent_(parent), remaining_(n) {}
    State* parent_;
    std::uint64_t remaining_;
  };

  StateIterator begin();
  StateIterator end() { return StateIterator(nullptr, 0); }

  std::uint64_t iterations() const { return max_iterations_; }
  std::int64_t range(std::size_t index = 0) const;

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  void SetLabel(const std::string& label) { label_ = label; }

 private:
  friend struct internal::Runner;

  State(std::uint64_t max_iterations, std::vector<std::int64_t> args,
        bool process_cpu_time);
  void finish();

  std::uint64_t max_iterations_;
  std::vector<std::int64_t> args_;
  bool process_cpu_time_;
  bool finished_ = false;
  std::int64_t items_processed_ = 0;
  std::string label_;
  std::uint64_t real_start_ns_ = 0;
  std::uint64_t cpu_start_ns_ = 0;
  std::uint64_t real_ns_ = 0;
  std::uint64_t cpu_ns_ = 0;
};

/// Compiler barriers, same contract as google-benchmark's: the value is
/// considered used and memory is considered touched.
template <class T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

template <class T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

internal::Benchmark* RegisterBenchmark(const std::string& name,
                                       internal::BenchFunction fn);

/// Parses and removes the recognized --benchmark_* flags from argv.
void Initialize(int* argc, char** argv);

/// True (after printing them) if any arguments survived Initialize
/// besides argv[0].
bool ReportUnrecognizedArguments(int argc, char** argv);

/// Extra "key": "value" entries appended to the JSON context block.
void AddCustomContext(const std::string& key, const std::string& value);

/// Runs every registered benchmark matching --benchmark_filter; returns
/// the number of runs executed.
std::size_t RunSpecifiedBenchmarks();

void Shutdown();

}  // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(func)                                   \
  [[maybe_unused]] static ::benchmark::internal::Benchmark* \
      MINIBENCH_CONCAT(minibench_reg_, __COUNTER__) =     \
          ::benchmark::RegisterBenchmark(#func, func)
